package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterministicForSeed(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds matched on %d/100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	// Drawing extra values from one child must not change a sibling.
	root1 := New(7)
	root2 := New(7)
	a1 := root1.Split("a")
	b1 := root1.Split("b")
	a2 := root2.Split("a")
	b2 := root2.Split("b")
	for i := 0; i < 50; i++ {
		a1.Float64() // consume from a1 only
	}
	_ = a2
	for i := 0; i < 20; i++ {
		if b1.Float64() != b2.Float64() {
			t.Fatal("sibling stream perturbed by other stream's draws")
		}
	}
}

func TestSplitSameNameSameStream(t *testing.T) {
	x := New(9).Split("noise")
	y := New(9).Split("noise")
	for i := 0; i < 20; i++ {
		if x.Float64() != y.Float64() {
			t.Fatal("same-name splits differ")
		}
	}
}

func TestSplitDifferentNamesDiffer(t *testing.T) {
	root := New(3)
	x := root.Split("alpha")
	y := root.Split("beta")
	same := 0
	for i := 0; i < 100; i++ {
		if x.Float64() == y.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("differently named splits matched %d/100 draws", same)
	}
}

func TestNestedSplitName(t *testing.T) {
	s := New(1).Split("engine").Split("noise")
	if s.Name() != "root/engine/noise" {
		t.Fatalf("name %q", s.Name())
	}
}

func TestUniformRange(t *testing.T) {
	s := New(11)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(5, 10)
		if v < 5 || v >= 10 {
			t.Fatalf("Uniform(5,10) = %v out of range", v)
		}
	}
}

func TestUniformRangeProperty(t *testing.T) {
	s := New(13)
	f := func(lo, span float64) bool {
		lo = math.Mod(lo, 1e6)
		span = math.Abs(math.Mod(span, 1e6)) + 1e-9
		v := s.Uniform(lo, lo+span)
		return v >= lo && v < lo+span
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRademacherIsPlusMinusOneAndBalanced(t *testing.T) {
	s := New(17)
	plus := 0
	const n = 10000
	for i := 0; i < n; i++ {
		v := s.Rademacher()
		if v != 1 && v != -1 {
			t.Fatalf("Rademacher = %v", v)
		}
		if v == 1 {
			plus++
		}
	}
	frac := float64(plus) / n
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("Rademacher +1 fraction %.3f far from 0.5", frac)
	}
}

func TestNoiseFactorMeanNearOne(t *testing.T) {
	s := New(23)
	const n = 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.NoiseFactor(0.2)
		if v <= 0 {
			t.Fatalf("NoiseFactor returned non-positive %v", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 0.97 || mean > 1.03 {
		t.Fatalf("NoiseFactor mean %.4f far from 1", mean)
	}
}

func TestNoiseFactorZeroCV(t *testing.T) {
	s := New(29)
	if v := s.NoiseFactor(0); v != 1 {
		t.Fatalf("NoiseFactor(0) = %v, want 1", v)
	}
	if v := s.NoiseFactor(-1); v != 1 {
		t.Fatalf("NoiseFactor(-1) = %v, want 1", v)
	}
}

func TestNormMoments(t *testing.T) {
	s := New(31)
	const n = 50000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Norm(3, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("Norm mean %.3f, want ~3", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("Norm stddev %.3f, want ~2", math.Sqrt(variance))
	}
}

func TestExpMean(t *testing.T) {
	s := New(37)
	const n = 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Exp(4)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-4) > 0.15 {
		t.Fatalf("Exp mean %.3f, want ~4", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(41)
	p := s.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestIntnRange(t *testing.T) {
	s := New(43)
	for i := 0; i < 1000; i++ {
		if v := s.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
}
