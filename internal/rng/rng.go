// Package rng provides seedable, splittable random-number streams.
//
// Every stochastic component of the simulation (workload noise, input-rate
// variation, SPSA perturbations, broker jitter) draws from its own named
// stream split off a root seed. Components therefore consume randomness
// independently: adding draws to one component does not perturb the sequence
// seen by another, which keeps experiments comparable across code changes
// and makes regressions bisectable.
package rng

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Stream is a deterministic random stream. It wraps math/rand with the
// distributions used across the simulator. Not safe for concurrent use;
// the simulation kernel is single-threaded by design.
type Stream struct {
	r    *rand.Rand
	seed uint64
	name string
}

// New returns the root stream for a seed.
func New(seed uint64) *Stream {
	return &Stream{r: rand.New(rand.NewSource(int64(seed))), seed: seed, name: "root"}
}

// Split derives an independent child stream identified by name. The child's
// seed mixes the parent seed with an FNV-1a hash of the name, so the same
// (seed, path-of-names) always yields the same stream.
func (s *Stream) Split(name string) *Stream {
	h := fnv.New64a()
	h.Write([]byte(s.name))
	h.Write([]byte{0})
	h.Write([]byte(name))
	child := s.seed*0x9e3779b97f4a7c15 + h.Sum64()
	return &Stream{r: rand.New(rand.NewSource(int64(child))), seed: child, name: s.name + "/" + name}
}

// Name returns the stream's hierarchical name (for diagnostics).
func (s *Stream) Name() string { return s.name }

// Rand exposes the stream's underlying seeded *rand.Rand for interop with
// standard-library APIs that accept one (e.g. testing/quick's Config.Rand,
// whose default source is time-seeded and would break run-to-run
// reproducibility). The returned value shares the stream's state.
func (s *Stream) Rand() *rand.Rand { return s.r }

// Float64 returns a uniform value in [0,1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform int in [0,n). n must be positive.
func (s *Stream) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (s *Stream) Int63() int64 { return s.r.Int63() }

// Uniform returns a uniform value in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Norm returns a normal sample with the given mean and standard deviation.
func (s *Stream) Norm(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// Lognormal returns exp(N(mu, sigma)). For multiplicative noise around 1,
// use mu = -sigma*sigma/2 so the mean is exactly 1.
func (s *Stream) Lognormal(mu, sigma float64) float64 {
	return math.Exp(s.Norm(mu, sigma))
}

// NoiseFactor returns a multiplicative lognormal factor with mean 1 and the
// given coefficient of variation (approximately, for small cv).
func (s *Stream) NoiseFactor(cv float64) float64 {
	if cv <= 0 {
		return 1
	}
	sigma := math.Sqrt(math.Log(1 + cv*cv))
	return s.Lognormal(-sigma*sigma/2, sigma)
}

// Rademacher returns +1 or -1 with probability 1/2 each — the symmetric
// Bernoulli distribution SPSA requires for its perturbation components.
func (s *Stream) Rademacher() float64 {
	if s.r.Int63()&1 == 0 {
		return -1
	}
	return 1
}

// Exp returns an exponential sample with the given mean.
func (s *Stream) Exp(mean float64) float64 {
	return s.r.ExpFloat64() * mean
}

// Perm returns a random permutation of [0,n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }
