package gptuner

import (
	"math"
	"testing"

	"nostop/internal/baselines"
	"nostop/internal/rng"
)

// TestPosteriorVarianceNonNegative sweeps a fitted GP over randomized
// query points and checks that the predictive variance never goes negative
// — the invariant the variance gate (and every std computation) rests on.
func TestPosteriorVarianceNonNegative(t *testing.T) {
	seed := rng.New(42).Split("gp-variance")
	for trial := 0; trial < 20; trial++ {
		n := 2 + seed.Intn(10)
		dim := 1 + seed.Intn(4)
		xs := make([][]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = make([]float64, dim)
			for j := range xs[i] {
				xs[i][j] = seed.Float64()
			}
			ys[i] = seed.Uniform(1, 40)
		}
		gp, err := baselines.NewGP(4.0/19, 1+seed.Float64()*10, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if err := gp.Fit(xs, ys); err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 50; probe++ {
			x := make([]float64, dim)
			for j := range x {
				x[j] = seed.Uniform(-0.5, 1.5)
			}
			_, variance := gp.Predict(x)
			if variance < 0 || math.IsNaN(variance) {
				t.Fatalf("trial %d probe %d: posterior variance %v", trial, probe, variance)
			}
		}
		// Training inputs themselves are valid queries too.
		for i, x := range xs {
			_, variance := gp.Predict(x)
			if variance < 0 || math.IsNaN(variance) {
				t.Fatalf("trial %d: negative variance %v at training point %d", trial, variance, i)
			}
		}
	}
}

// TestEIZeroAtIncumbent pins the acquisition floor: EI is non-negative
// everywhere and exactly zero at the incumbent and every other evaluated
// input, so the search can never re-propose a measured point on surrogate
// noise.
func TestEIZeroAtIncumbent(t *testing.T) {
	seed := rng.New(7).Split("gp-ei")
	xs := [][]float64{{0.1, 0.2}, {0.5, 0.9}, {0.8, 0.3}, {0.25, 0.6}}
	ys := []float64{20, 8, 14, 11}
	gp, err := baselines.NewGP(4.0/19, 25, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if err := gp.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	best := ys[1] // incumbent: the lowest objective
	for i, x := range xs {
		if ei := EI(gp, x, best, xs); ei != 0 {
			t.Errorf("EI at evaluated point %d = %v, want exactly 0", i, ei)
		}
	}
	// A copy of the incumbent (not the same slice) still floors to zero.
	if ei := EI(gp, []float64{0.5, 0.9}, best, xs); ei != 0 {
		t.Errorf("EI at incumbent copy = %v, want exactly 0", ei)
	}
	for probe := 0; probe < 200; probe++ {
		x := []float64{seed.Float64(), seed.Float64()}
		if ei := EI(gp, x, best, xs); ei < 0 || math.IsNaN(ei) {
			t.Fatalf("EI(%v) = %v", x, ei)
		}
	}
	// Somewhere the acquisition must be strictly positive, or the search
	// could never move at all.
	positive := false
	for probe := 0; probe < 200 && !positive; probe++ {
		x := []float64{seed.Float64(), seed.Float64()}
		positive = EI(gp, x, best, xs) > 0
	}
	if !positive {
		t.Error("EI is zero everywhere on 200 random probes")
	}
}

// TestEIDimensionMismatchSkipsEvaluated guards the distance loop: an
// evaluated input of a different dimension is ignored rather than matched.
func TestEIDimensionMismatchSkipsEvaluated(t *testing.T) {
	gp, err := baselines.NewGP(4.0/19, 25, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if err := gp.Fit([][]float64{{0.2, 0.2}, {0.7, 0.7}}, []float64{10, 5}); err != nil {
		t.Fatal(err)
	}
	evaluated := [][]float64{{0.2, 0.2}, {0.7, 0.7}, {0.4}} // last: wrong dim
	if ei := EI(gp, []float64{0.4, 0.4}, 5, evaluated); ei < 0 {
		t.Errorf("EI = %v, want >= 0", ei)
	}
}
