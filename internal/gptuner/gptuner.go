// Package gptuner implements an uncertainty-aware Gaussian-process
// configuration tuner over the widened config space, after "An
// Uncertainty-Aware Approach to Optimal Configuration of Stream Processing
// Systems" (Jamshidi & Casale). It is the surrogate-model peer of the
// paper's SPSA controller and of the two-parameter BayesOpt baseline,
// reusing the same GP regression (internal/baselines/gp.go over the
// internal/linalg Cholesky solver).
//
// What "uncertainty-aware" adds over plain Bayesian optimization here:
// configuration changes are gated on the surrogate's predictive variance.
// A candidate that maximizes expected improvement but whose predictive
// standard deviation exceeds StdGate x the observed signal deviation is NOT
// applied to the live system; the tuner instead evaluates the best
// candidate the gate admits, and only relaxes to the lowest-variance
// candidate when nothing passes. On a production stream an exploratory
// reconfiguration is itself a disruption, so the gate trades search speed
// for bounded risk.
//
// Determinism contract: candidate sampling draws from a dedicated
// rng.Stream in a fixed order, acquisition ties break toward the earlier
// candidate, and all decisions happen in batch-completion callbacks.
// Failure awareness mirrors §5.4: fault-window and first-after-reconfigure
// batches never enter a measurement window, measurement restarts after a
// fault clears, and the tuner defers reconfigurations while a fault is in
// effect.
package gptuner

import (
	"errors"
	"math"

	"nostop/internal/baselines"
	"nostop/internal/core"
	"nostop/internal/engine"
	"nostop/internal/rng"
	"nostop/internal/stats"
)

// Options configure the tuner. Zero values mean defaults.
type Options struct {
	// Space is the configuration lattice to search. Zero: the canonical
	// widened space over the engine's bounds and the workload's peak
	// nominal rate. Intersected with the engine's bounds at construction.
	Space core.ConfigSpace
	// Seed drives design-point and candidate sampling. Nil: rng.New(13).
	Seed *rng.Stream
	// InitialDesign is the number of stratified seeding evaluations
	// (default 6).
	InitialDesign int
	// MaxEvaluations bounds the total measured configurations (default 30).
	MaxEvaluations int
	// MeasureBatches is the clean-batch window per evaluation (default 3).
	MeasureBatches int
	// Candidates is the number of lattice points sampled per acquisition
	// round (default 128) — a seeded random search, since the widened
	// lattice is too large to grid-scan.
	Candidates int
	// Rho is Eq. 3's delay-overrun weight (default 2).
	Rho float64
	// EIStop ends the search when the best admissible expected improvement
	// falls below it (default 0.05, matching the BayesOpt baseline).
	EIStop float64
	// StdGate is the predictive-variance gate: a candidate is admissible
	// only if its posterior std is at most StdGate x the sample std of the
	// observed objectives (default 0.8).
	StdGate float64
	// LengthScale is the RBF length scale in the paper's [1, 20] interval
	// scale (default 4, normalized by /19 like the BayesOpt baseline).
	LengthScale float64
	// DrainThreshold is the queue depth that triggers an emergency jump to
	// the safest point in the space (default 10). Negative disables.
	DrainThreshold int
}

// withDefaults resolves zero options.
func (o Options) withDefaults() Options {
	if o.Seed == nil {
		o.Seed = rng.New(13)
	}
	if o.InitialDesign == 0 {
		o.InitialDesign = 6
	}
	if o.MaxEvaluations == 0 {
		o.MaxEvaluations = 30
	}
	if o.MeasureBatches == 0 {
		o.MeasureBatches = 3
	}
	if o.Candidates == 0 {
		o.Candidates = 128
	}
	if o.Rho == 0 {
		o.Rho = 2
	}
	if o.EIStop == 0 {
		o.EIStop = 0.05
	}
	if o.StdGate == 0 {
		o.StdGate = 0.8
	}
	if o.LengthScale == 0 {
		o.LengthScale = 4
	}
	if o.DrainThreshold == 0 {
		o.DrainThreshold = 10
	}
	return o
}

// Evaluation is one measured configuration.
type Evaluation struct {
	Config core.FullConfig
	X      []float64 // normalized coordinates
	Y      float64   // Eq. 3 objective (lower is better)
}

// Tuner is the attached uncertainty-aware GP controller.
type Tuner struct {
	eng   *engine.Engine
	opts  Options
	space core.ConfigSpace
	vals  [][]float64
	seed  *rng.Stream

	evals   []Evaluation
	current core.FullConfig
	acc     []float64
	await   bool
	waited  int
	inFault bool
	holding bool // a proposal is deferred until the fault clears

	attached bool
	draining bool
	done     bool
	applied  int
	drains   int
	gated    int // EI maximizers rejected by the variance gate
}

// New builds a tuner for eng, intersecting the space with the engine's
// bounds and validating it.
func New(eng *engine.Engine, opts Options) (*Tuner, error) {
	opts = opts.withDefaults()
	space := opts.Space
	if len(space.Axes) == 0 {
		_, peak := eng.Workload().RateBand()
		space = core.WidenedSpace(eng.ConfigBounds(), peak)
	}
	space = space.Intersect(eng.ConfigBounds())
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxEvaluations < opts.InitialDesign {
		return nil, errors.New("gptuner: MaxEvaluations below InitialDesign")
	}
	return &Tuner{
		eng:   eng,
		opts:  opts,
		space: space,
		vals:  space.Lattice(),
		seed:  opts.Seed.Split("gp"),
	}, nil
}

// Attach registers the batch listener and applies the first design point.
func (t *Tuner) Attach() error {
	if t.attached {
		return errors.New("gptuner: already attached")
	}
	t.attached = true
	t.eng.AddListener(engine.ListenerFunc(t.onBatch))
	return t.evaluate(t.designPoint(0))
}

// designPoint returns the i-th stratified seeding configuration: the batch
// interval axis is stratified across the design, the rest jittered.
func (t *Tuner) designPoint(i int) core.FullConfig {
	x := make([]float64, len(t.space.Axes))
	for j := range x {
		if j == 0 {
			x[j] = (float64(i) + t.seed.Float64()) / float64(t.opts.InitialDesign)
		} else {
			x[j] = t.seed.Float64()
		}
	}
	return t.space.FromNorm(x)
}

// evaluate applies a configuration and starts its measurement window.
func (t *Tuner) evaluate(cfg core.FullConfig) error {
	t.current = cfg
	t.acc = t.acc[:0]
	t.await = cfg.Engine() != t.eng.Config()
	t.waited = 0
	t.applied++
	return t.space.Apply(t.eng, cfg)
}

func (t *Tuner) onBatch(bs engine.BatchStats) {
	if t.done {
		return
	}
	if bs.FaultActive {
		t.inFault = true
		return
	}
	if t.inFault {
		// First clean batch after a fault: restart the window so fault
		// spillover never contaminates a measurement (§5.4 recalibration).
		t.inFault = false
		t.acc = t.acc[:0]
		if t.holding && !t.eng.FaultInEffect() {
			t.holding = false
			t.next()
			return
		}
	}
	if t.draining {
		if t.eng.QueueLen() == 0 && bs.SchedulingDelay <= bs.Config.BatchInterval {
			t.draining = false
			t.next()
		}
		return
	}
	if t.await {
		if bs.FirstAfterReconfig {
			t.await = false
			return
		}
		t.waited++
		if t.waited < 25 {
			return
		}
		t.await = false
	} else if bs.FirstAfterReconfig {
		return
	}
	t.acc = append(t.acc, bs.ProcessingTime.Seconds()+bs.SchedulingDelay.Seconds())
	if q := t.eng.QueueLen(); t.opts.DrainThreshold > 0 && q > t.opts.DrainThreshold {
		// Emergency: score the point with its projected drain cost and
		// stabilize at the safest corner of the space (if no fault is in
		// effect — during one we just wait for the queue to clear).
		projected := stats.Mean(t.acc) * float64(1+q)
		t.record(projected)
		t.draining = true
		t.drains++
		if !t.eng.FaultInEffect() {
			safe := t.space.Clamp(core.FullConfig{BatchInterval: 1 << 62, Executors: 1 << 30})
			t.applied++
			_ = t.space.Apply(t.eng, safe)
		}
		return
	}
	if len(t.acc) < t.opts.MeasureBatches {
		return
	}
	t.record(stats.Mean(t.acc))
	t.next()
}

// record scores the just-measured configuration with Eq. 3.
func (t *Tuner) record(measured float64) {
	interval := t.current.BatchInterval.Seconds()
	y := interval + t.opts.Rho*math.Max(0, measured-interval)
	t.evals = append(t.evals, Evaluation{Config: t.current, X: t.space.Norm(t.current), Y: y})
}

// next chooses the following configuration: remaining design points first,
// then the variance-gated EI maximizer. Reconfigurations are deferred while
// a fault is in effect.
func (t *Tuner) next() {
	if t.eng.FaultInEffect() {
		t.holding = true
		t.inFault = true
		return
	}
	if len(t.evals) >= t.opts.MaxEvaluations {
		t.finish()
		return
	}
	if len(t.evals) < t.opts.InitialDesign {
		_ = t.evaluate(t.designPoint(len(t.evals)))
		return
	}
	cfg, ei, err := t.propose()
	if err != nil || ei < t.opts.EIStop {
		t.finish()
		return
	}
	_ = t.evaluate(cfg)
}

// propose fits the GP on all evaluations and picks the next point from a
// seeded random sample of the lattice: the EI maximizer if the variance
// gate admits it, otherwise the best admissible candidate, otherwise the
// lowest-variance candidate (so the search always progresses).
func (t *Tuner) propose() (core.FullConfig, float64, error) {
	xs := make([][]float64, len(t.evals))
	ys := make([]float64, len(t.evals))
	var o stats.Online
	best := math.Inf(1)
	for i, e := range t.evals {
		xs[i] = e.X
		ys[i] = e.Y
		o.Add(e.Y)
		if e.Y < best {
			best = e.Y
		}
	}
	signal := o.Var()
	if signal < 1 {
		signal = 1
	}
	gp, err := baselines.NewGP(t.opts.LengthScale/19, signal, math.Max(0.05*signal, 0.25))
	if err != nil {
		return core.FullConfig{}, 0, err
	}
	if err := gp.Fit(xs, ys); err != nil {
		return core.FullConfig{}, 0, err
	}
	gate := t.opts.StdGate * o.Std()
	type cand struct {
		cfg core.FullConfig
		ei  float64
		std float64
	}
	var bestAll, bestAdm, calmest cand
	bestAll.ei, bestAdm.ei = -1, -1
	calmest.std = math.Inf(1)
	for c := 0; c < t.opts.Candidates; c++ {
		idx := make([]int, len(t.vals))
		for i := range idx {
			idx[i] = t.seed.Intn(len(t.vals[i]))
		}
		cfg := t.space.At(idx)
		x := t.space.Norm(cfg)
		ei := EI(gp, x, best, xs)
		_, variance := gp.Predict(x)
		std := math.Sqrt(variance)
		if ei > bestAll.ei {
			bestAll = cand{cfg, ei, std}
		}
		if std <= gate && ei > bestAdm.ei {
			bestAdm = cand{cfg, ei, std}
		}
		if std < calmest.std {
			calmest = cand{cfg, ei, std}
		}
	}
	if bestAll.ei < t.opts.EIStop {
		return core.FullConfig{}, bestAll.ei, nil // search has dried up
	}
	if bestAll.std <= gate {
		return bestAll.cfg, bestAll.ei, nil
	}
	// The EI maximizer is too uncertain to inflict on the live system.
	t.gated++
	if bestAdm.ei >= 0 {
		return bestAdm.cfg, math.Max(bestAdm.ei, t.opts.EIStop), nil
	}
	return calmest.cfg, math.Max(calmest.ei, t.opts.EIStop), nil
}

// finish applies the best observed configuration and stops searching.
func (t *Tuner) finish() {
	t.done = true
	if best, ok := t.Best(); ok {
		t.applied++
		_ = t.space.Apply(t.eng, best.Config)
	}
}

// Best returns the lowest-objective evaluation so far.
func (t *Tuner) Best() (Evaluation, bool) {
	if len(t.evals) == 0 {
		return Evaluation{}, false
	}
	best := t.evals[0]
	for _, e := range t.evals[1:] {
		if e.Y < best.Y {
			best = e
		}
	}
	return best, true
}

// EI returns the expected-improvement acquisition of candidate x given a
// fitted surrogate, the incumbent (best observed) objective value, and the
// set of already-evaluated inputs. Points coinciding with an evaluated
// input — the incumbent in particular — score exactly zero: in the
// noise-free limit the posterior collapses there, so re-measuring a known
// point is never informative, and the exact floor keeps the search from
// re-proposing the incumbent forever on surrogate noise.
func EI(gp *baselines.GP, x []float64, best float64, evaluated [][]float64) float64 {
	for _, e := range evaluated {
		if len(e) != len(x) {
			continue
		}
		d2 := 0.0
		for i := range x {
			d := x[i] - e[i]
			d2 += d * d
		}
		if d2 < 1e-18 {
			return 0
		}
	}
	ei := gp.ExpectedImprovement(x, best)
	if ei < 0 {
		return 0
	}
	return ei
}

// Space returns the (intersected) space the tuner searches.
func (t *Tuner) Space() core.ConfigSpace { return t.space }

// Evaluations returns all measured configurations in order.
func (t *Tuner) Evaluations() []Evaluation { return t.evals }

// Done reports whether the search has stopped.
func (t *Tuner) Done() bool { return t.done }

// ConfigureSteps returns configuration changes requested.
func (t *Tuner) ConfigureSteps() int { return t.applied }

// Drains returns emergency stabilization episodes.
func (t *Tuner) Drains() int { return t.drains }

// Gated returns EI maximizers rejected by the predictive-variance gate.
func (t *Tuner) Gated() int { return t.gated }
