package gptuner

import (
	"encoding/json"
	"testing"
	"time"

	"nostop/internal/core"
	"nostop/internal/engine"
	"nostop/internal/ratetrace"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/workload"
)

func sec(n float64) time.Duration { return time.Duration(n * float64(time.Second)) }

func newEngine(t *testing.T, mutate func(*engine.Options)) (*sim.Clock, *engine.Engine) {
	t.Helper()
	clock := sim.NewClock()
	opts := engine.Options{
		Workload: workload.NewWordCount(),
		Trace:    ratetrace.Constant{Rate: 150000},
		Seed:     rng.New(21),
		Initial:  engine.Config{BatchInterval: 20 * time.Second, Executors: 10},
	}
	if mutate != nil {
		mutate(&opts)
	}
	eng, err := engine.New(clock, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	return clock, eng
}

func TestTunerSearchesWithinBounds(t *testing.T) {
	clock, eng := newEngine(t, nil)
	tuner, err := New(eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bounds := tuner.Space().EngineBounds()
	violations := 0
	eng.AddListener(engine.ListenerFunc(func(bs engine.BatchStats) {
		if !bounds.Contains(bs.Config) {
			violations++
		}
	}))
	if err := tuner.Attach(); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(sim.Time(sec(14400)))

	if violations > 0 {
		t.Errorf("%d batches ran outside the space's engine bounds", violations)
	}
	evals := tuner.Evaluations()
	if len(evals) < 2 {
		t.Fatalf("only %d evaluations over a 4h run", len(evals))
	}
	for i, e := range evals {
		if !(e.Y > 0) {
			t.Errorf("evaluation %d: non-positive objective %v", i, e.Y)
		}
		if !bounds.Contains(e.Config.Engine()) {
			t.Errorf("evaluation %d: config %+v outside engine bounds", i, e.Config)
		}
	}
	best, ok := tuner.Best()
	if !ok {
		t.Fatal("no best evaluation")
	}
	for _, e := range evals {
		if e.Y < best.Y {
			t.Errorf("Best missed evaluation with objective %v < %v", e.Y, best.Y)
		}
	}
	if tuner.Done() {
		// A finished search must have left the engine on the best config.
		if got := eng.Config(); got != bounds.Clamp(best.Config.Engine()) {
			t.Errorf("finished on %+v, best is %+v", got, best.Config.Engine())
		}
	}
}

func TestTunerSameSeedSameTrajectory(t *testing.T) {
	run := func() ([]byte, []byte, int, int) {
		clock, eng := newEngine(t, nil)
		tuner, err := New(eng, Options{Seed: rng.New(55)})
		if err != nil {
			t.Fatal(err)
		}
		if err := tuner.Attach(); err != nil {
			t.Fatal(err)
		}
		clock.RunUntil(sim.Time(sec(7200)))
		cfg, err := json.Marshal(eng.Config())
		if err != nil {
			t.Fatal(err)
		}
		evals, err := json.Marshal(tuner.Evaluations())
		if err != nil {
			t.Fatal(err)
		}
		return cfg, evals, tuner.ConfigureSteps(), tuner.Gated()
	}
	c1, e1, a1, g1 := run()
	c2, e2, a2, g2 := run()
	if string(c1) != string(c2) || string(e1) != string(e2) || a1 != a2 || g1 != g2 {
		t.Fatalf("same seed diverged: cfg %s vs %s, applied %d/%d, gated %d/%d",
			c1, c2, a1, a2, g1, g2)
	}
}

func TestTunerValidation(t *testing.T) {
	_, eng := newEngine(t, nil)
	if _, err := New(eng, Options{InitialDesign: 10, MaxEvaluations: 5}); err == nil {
		t.Error("MaxEvaluations below InitialDesign accepted")
	}
	bad := core.ConfigSpace{Version: "v0", Axes: []core.AxisSpec{
		{Param: core.ParamBatchInterval, Min: 1, Max: 40},
		{Param: core.ParamExecutors, Min: 1, Max: 20},
	}}
	if _, err := New(eng, Options{Space: bad}); err == nil {
		t.Error("invalid space accepted")
	}
}

func TestTunerDoubleAttach(t *testing.T) {
	_, eng := newEngine(t, nil)
	tuner, err := New(eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tuner.Attach(); err != nil {
		t.Fatal(err)
	}
	if err := tuner.Attach(); err == nil {
		t.Error("second Attach accepted")
	}
}
