package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"nostop/internal/rng"
)

func near(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestVectorDotNorm(t *testing.T) {
	v := Vector{3, 4}
	if v.Dot(v) != 25 {
		t.Fatalf("Dot=%v", v.Dot(v))
	}
	if v.Norm() != 5 {
		t.Fatalf("Norm=%v", v.Norm())
	}
}

func TestVectorOps(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{10, 20, 30}
	v.AddScaled(0.1, w)
	for i, want := range []float64{2, 4, 6} {
		if !near(v[i], want, 1e-12) {
			t.Fatalf("AddScaled=%v", v)
		}
	}
	v.Scale(0.5)
	if !near(v[0], 1, 1e-12) {
		t.Fatalf("Scale=%v", v)
	}
	d := w.Sub(Vector{1, 2, 3})
	if d[2] != 27 {
		t.Fatalf("Sub=%v", d)
	}
	c := v.Clone()
	c[0] = 99
	if v[0] == 99 {
		t.Fatal("Clone aliases")
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestMatrixMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	got := m.MulVec(Vector{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("MulVec=%v", got)
	}
}

func TestMatrixMulAndTranspose(t *testing.T) {
	a := NewMatrix(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	b := a.Transpose()
	if b.Rows != 3 || b.Cols != 2 || b.At(2, 1) != 6 || b.At(0, 1) != 4 {
		t.Fatalf("Transpose wrong: %+v", b)
	}
	p := a.Mul(b) // 2x2: [[14,32],[32,77]]
	if p.At(0, 0) != 14 || p.At(0, 1) != 32 || p.At(1, 0) != 32 || p.At(1, 1) != 77 {
		t.Fatalf("Mul=%+v", p)
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	v := Vector{7, 8, 9}
	got := id.MulVec(v)
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("I·v=%v", got)
		}
	}
}

func TestMatrixCloneIndependent(t *testing.T) {
	a := Identity(2)
	b := a.Clone()
	b.Set(0, 0, 5)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone aliases storage")
	}
}

func TestCholeskyKnown(t *testing.T) {
	// A = [[4,2],[2,3]] has L = [[2,0],[1,sqrt(2)]].
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{4, 2, 2, 3})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !near(ch.L.At(0, 0), 2, 1e-12) || !near(ch.L.At(1, 0), 1, 1e-12) || !near(ch.L.At(1, 1), math.Sqrt2, 1e-12) {
		t.Fatalf("L=%+v", ch.L)
	}
	if ch.L.At(0, 1) != 0 {
		t.Fatal("L not lower-triangular")
	}
	// log det(A) = log 8
	if !near(ch.LogDet(), math.Log(8), 1e-12) {
		t.Fatalf("LogDet=%v want %v", ch.LogDet(), math.Log(8))
	}
}

func TestCholeskySolve(t *testing.T) {
	a := NewMatrix(3, 3)
	copy(a.Data, []float64{
		6, 2, 1,
		2, 5, 2,
		1, 2, 4,
	})
	want := Vector{1, -2, 3}
	b := a.MulVec(want)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	got := ch.Solve(b)
	for i := range want {
		if !near(got[i], want[i], 1e-9) {
			t.Fatalf("Solve=%v want %v", got, want)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); err != ErrNotPositiveDefinite {
		t.Fatalf("err=%v, want ErrNotPositiveDefinite", err)
	}
}

func TestCholeskyRandomSPDProperty(t *testing.T) {
	// Property: for random SPD A = BᵀB + I and random x, Solve(A·x) ≈ x.
	r := rng.New(99).Rand()
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(8)
		b := NewMatrix(n, n)
		for i := range b.Data {
			b.Data[i] = r.NormFloat64()
		}
		a := b.Transpose().Mul(b)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+1)
		}
		x := make(Vector, n)
		for i := range x {
			x[i] = r.NormFloat64() * 3
		}
		rhs := a.MulVec(x)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := ch.Solve(rhs)
		for i := range x {
			if !near(got[i], x[i], 1e-6*(1+math.Abs(x[i]))) {
				t.Fatalf("trial %d: got %v want %v", trial, got, x)
			}
		}
		// Reconstruction: L·Lᵀ ≈ A.
		rec := ch.L.Mul(ch.L.Transpose())
		for i := range a.Data {
			if !near(rec.Data[i], a.Data[i], 1e-8*(1+math.Abs(a.Data[i]))) {
				t.Fatalf("trial %d: L·Lᵀ≠A", trial)
			}
		}
	}
}

func TestSolveSPDJitterRecovery(t *testing.T) {
	// Singular matrix: SolveSPD should succeed after adding jitter.
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 1, 1, 1})
	x, err := SolveSPD(a, Vector{2, 2})
	if err != nil {
		t.Fatalf("SolveSPD failed on singular-with-jitter case: %v", err)
	}
	// With jitter the solution approximates the minimum-norm solution (1,1).
	if math.Abs(x[0]+x[1]-2) > 1e-3 {
		t.Fatalf("x=%v, x0+x1 should be ~2", x)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// y = 2 + 3x fit with design matrix [1, x].
	xs := []float64{0, 1, 2, 3, 4}
	x := NewMatrix(len(xs), 2)
	y := make(Vector, len(xs))
	for i, v := range xs {
		x.Set(i, 0, 1)
		x.Set(i, 1, v)
		y[i] = 2 + 3*v
	}
	beta, err := LeastSquares(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !near(beta[0], 2, 1e-9) || !near(beta[1], 3, 1e-9) {
		t.Fatalf("beta=%v want [2 3]", beta)
	}
}

func TestLeastSquaresNoisy(t *testing.T) {
	r := rng.New(4).Rand()
	n := 500
	x := NewMatrix(n, 3)
	y := make(Vector, n)
	true3 := Vector{1.5, -2, 0.5}
	for i := 0; i < n; i++ {
		x.Set(i, 0, 1)
		x.Set(i, 1, r.NormFloat64())
		x.Set(i, 2, r.NormFloat64())
		y[i] = true3.Dot(Vector{x.At(i, 0), x.At(i, 1), x.At(i, 2)}) + 0.05*r.NormFloat64()
	}
	beta, err := LeastSquares(x, y, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range true3 {
		if !near(beta[i], true3[i], 0.02) {
			t.Fatalf("beta=%v want %v", beta, true3)
		}
	}
}

func TestLeastSquaresProperty(t *testing.T) {
	// Property: residual Xᵀ(y − Xβ) ≈ 0 at the least-squares solution
	// (ridge = 0, well-conditioned design).
	f := func(seed int64) bool {
		r := rng.New(uint64(seed)).Rand()
		n, p := 20, 3
		x := NewMatrix(n, p)
		y := make(Vector, n)
		for i := 0; i < n; i++ {
			for j := 0; j < p; j++ {
				x.Set(i, j, r.NormFloat64())
			}
			y[i] = r.NormFloat64()
		}
		beta, err := LeastSquares(x, y, 0)
		if err != nil {
			return false
		}
		resid := y.Sub(x.MulVec(beta))
		grad := x.Transpose().MulVec(resid)
		return grad.Norm() < 1e-8*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rng.New(7).Rand()}); err != nil {
		t.Error(err)
	}
}

func TestNewMatrixBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMatrix(0,1) did not panic")
		}
	}()
	NewMatrix(0, 1)
}
