// Package linalg provides the dense linear algebra the reproduction needs:
// vectors, column-major-free row-major matrices, Cholesky factorization and
// triangular solves (for the Gaussian-process Bayesian-optimization baseline)
// and normal-equation least squares (for the linear-regression workload).
//
// The implementation favours clarity and numerical robustness over raw
// speed; the matrices involved are small (tens of rows for GP, a handful of
// features for the workloads).
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the matrix is not
// (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix not positive definite")

// ErrSingular is returned by solvers when the system is singular.
var ErrSingular = errors.New("linalg: singular matrix")

// Vector is a dense float64 vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy of v.
func (v Vector) Clone() Vector { return append(Vector(nil), v...) }

// Dot returns the inner product of v and w; lengths must match.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(v), len(w)))
	}
	s := 0.0
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm returns the Euclidean norm.
func (v Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// AddScaled sets v = v + a*w in place and returns v.
func (v Vector) AddScaled(a float64, w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: AddScaled length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += a * w[i]
	}
	return v
}

// Scale multiplies v by a in place and returns v.
func (v Vector) Scale(a float64) Vector {
	for i := range v {
		v[i] *= a
	}
	return v
}

// Sub returns v - w as a new vector.
func (v Vector) Sub(w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: Sub length mismatch %d vs %d", len(v), len(w)))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, Data[r*Cols+c]
}

// NewMatrix returns a zero r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("linalg: invalid matrix shape %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{Rows: m.Rows, Cols: m.Cols, Data: append([]float64(nil), m.Data...)}
}

// Row returns row r as a slice aliasing the matrix storage.
func (m *Matrix) Row(r int) Vector { return Vector(m.Data[r*m.Cols : (r+1)*m.Cols]) }

// MulVec returns m·v.
func (m *Matrix) MulVec(v Vector) Vector {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch %dx%d · %d", m.Rows, m.Cols, len(v)))
	}
	out := make(Vector, m.Rows)
	for r := 0; r < m.Rows; r++ {
		out[r] = m.Row(r).Dot(v)
	}
	return out
}

// Mul returns m·n as a new matrix.
func (m *Matrix) Mul(n *Matrix) *Matrix {
	if m.Cols != n.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d · %dx%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	out := NewMatrix(m.Rows, n.Cols)
	for r := 0; r < m.Rows; r++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(r, k)
			if a == 0 {
				continue
			}
			for c := 0; c < n.Cols; c++ {
				out.Data[r*out.Cols+c] += a * n.At(k, c)
			}
		}
	}
	return out
}

// Transpose returns mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			out.Set(c, r, m.At(r, c))
		}
	}
	return out
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Cholesky holds the lower-triangular factor L with A = L·Lᵀ.
type Cholesky struct {
	L *Matrix
}

// NewCholesky factors the symmetric positive-definite matrix a. Only the
// lower triangle of a is read. Returns ErrNotPositiveDefinite when a pivot
// is non-positive.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("linalg: Cholesky of non-square %dx%d", a.Rows, a.Cols))
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return &Cholesky{L: l}, nil
}

// Solve solves A·x = b given the factorization, via forward then backward
// substitution.
func (ch *Cholesky) Solve(b Vector) Vector {
	y := ch.SolveLower(b)
	return ch.SolveUpper(y)
}

// SolveLower solves L·y = b (forward substitution).
func (ch *Cholesky) SolveLower(b Vector) Vector {
	n := ch.L.Rows
	if len(b) != n {
		panic(fmt.Sprintf("linalg: SolveLower length mismatch %d vs %d", len(b), n))
	}
	y := make(Vector, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= ch.L.At(i, k) * y[k]
		}
		y[i] = s / ch.L.At(i, i)
	}
	return y
}

// SolveUpper solves Lᵀ·x = y (backward substitution).
func (ch *Cholesky) SolveUpper(y Vector) Vector {
	n := ch.L.Rows
	if len(y) != n {
		panic(fmt.Sprintf("linalg: SolveUpper length mismatch %d vs %d", len(y), n))
	}
	x := make(Vector, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= ch.L.At(k, i) * x[k]
		}
		x[i] = s / ch.L.At(i, i)
	}
	return x
}

// LogDet returns log det(A) = 2·Σ log L[i][i].
func (ch *Cholesky) LogDet() float64 {
	s := 0.0
	for i := 0; i < ch.L.Rows; i++ {
		s += math.Log(ch.L.At(i, i))
	}
	return 2 * s
}

// SolveSPD solves A·x = b for symmetric positive-definite A, adding jitter
// to the diagonal and retrying if the factorization fails. This is the
// standard Gaussian-process conditioning trick.
func SolveSPD(a *Matrix, b Vector) (Vector, error) {
	jitter := 0.0
	for attempt := 0; attempt < 8; attempt++ {
		m := a
		if jitter > 0 {
			m = a.Clone()
			for i := 0; i < m.Rows; i++ {
				m.Set(i, i, m.At(i, i)+jitter)
			}
		}
		ch, err := NewCholesky(m)
		if err == nil {
			return ch.Solve(b), nil
		}
		if jitter == 0 {
			jitter = 1e-10
		} else {
			jitter *= 100
		}
	}
	return nil, ErrNotPositiveDefinite
}

// LeastSquares solves min ‖X·β − y‖² via the normal equations with a small
// ridge term for stability: (XᵀX + λI)·β = Xᵀy. X has one row per sample.
func LeastSquares(x *Matrix, y Vector, ridge float64) (Vector, error) {
	if x.Rows != len(y) {
		panic(fmt.Sprintf("linalg: LeastSquares %d rows vs %d targets", x.Rows, len(y)))
	}
	xt := x.Transpose()
	xtx := xt.Mul(x)
	for i := 0; i < xtx.Rows; i++ {
		xtx.Set(i, i, xtx.At(i, i)+ridge)
	}
	xty := xt.MulVec(y)
	beta, err := SolveSPD(xtx, xty)
	if err != nil {
		return nil, ErrSingular
	}
	return beta, nil
}
