// Package ratetrace models the arrival rate of streaming input data.
//
// The paper's generator "sends data items at a random rate within a certain
// range" (§6.2.2: MinRate <= Rate <= MaxRate) and §5.5 additionally requires
// traffic surges (e-commerce promotions, spike activities) to exercise
// NoStop's optimization-restart logic. Each Trace maps virtual time to an
// instantaneous rate in records/second; generators hold a sampled rate for a
// dwell period, mirroring a producer that re-rolls its speed periodically.
package ratetrace

import (
	"fmt"
	"math"
	"sort"
	"time"

	"nostop/internal/rng"
	"nostop/internal/sim"
)

// Trace reports the instantaneous input data rate (records/second) at a
// virtual time. Implementations must be deterministic: the same t always
// yields the same rate, so that consumers may query out of order.
type Trace interface {
	// RateAt returns the arrival rate in records per second at time t.
	RateAt(t sim.Time) float64
	// Describe returns a short human-readable description for reports.
	Describe() string
}

// Constant is a fixed-rate trace.
type Constant struct {
	Rate float64 // records/second
}

// RateAt implements Trace.
func (c Constant) RateAt(sim.Time) float64 { return c.Rate }

// Describe implements Trace.
func (c Constant) Describe() string { return fmt.Sprintf("constant %.0f rec/s", c.Rate) }

// UniformBand re-samples a rate uniformly in [Min, Max] every Dwell period
// and holds it, reproducing the paper's experimental generator. Sampling is
// a pure function of the dwell-slot index, so RateAt is deterministic and
// random-access.
type UniformBand struct {
	Min, Max float64
	Dwell    time.Duration
	seed     *rng.Stream

	// Single-slot memo: deriving a per-slot stream seeds a fresh
	// math/rand source (a 607-word lagged-Fibonacci fill), which profiling
	// shows dominating whole-fleet runs when RateAt is hit every producer
	// tick. Ticks land in the same dwell slot for seconds at a time, so
	// caching the last slot's rate removes ~all of that cost while staying
	// bit-identical (the rate is still a pure function of the slot index).
	cacheSlot int64
	cacheRate float64
	cacheOK   bool
}

// NewUniformBand returns a band trace; dwell must be positive and max >= min.
func NewUniformBand(min, max float64, dwell time.Duration, seed *rng.Stream) *UniformBand {
	if dwell <= 0 {
		panic("ratetrace: dwell must be positive")
	}
	if max < min {
		panic(fmt.Sprintf("ratetrace: max %v < min %v", max, min))
	}
	return &UniformBand{Min: min, Max: max, Dwell: dwell, seed: seed}
}

// RateAt implements Trace.
func (u *UniformBand) RateAt(t sim.Time) float64 {
	slot := int64(t / sim.Time(u.Dwell))
	if u.cacheOK && slot == u.cacheSlot {
		return u.cacheRate
	}
	// Derive a per-slot stream so lookups are order-independent.
	s := u.seed.Split(fmt.Sprintf("slot-%d", slot))
	rate := u.Min + (u.Max-u.Min)*s.Float64()
	u.cacheSlot, u.cacheRate, u.cacheOK = slot, rate, true
	return rate
}

// Describe implements Trace.
func (u *UniformBand) Describe() string {
	return fmt.Sprintf("uniform [%.0f, %.0f] rec/s, dwell %v", u.Min, u.Max, u.Dwell)
}

// Sine oscillates around Mean with the given Amplitude and Period, clamped
// at zero. Models smooth diurnal-style variation.
type Sine struct {
	Mean      float64
	Amplitude float64
	Period    time.Duration
	Phase     float64 // radians
}

// RateAt implements Trace.
func (s Sine) RateAt(t sim.Time) float64 {
	if s.Period <= 0 {
		return s.Mean
	}
	omega := 2 * math.Pi / s.Period.Seconds()
	r := s.Mean + s.Amplitude*math.Sin(omega*t.Seconds()+s.Phase)
	if r < 0 {
		r = 0
	}
	return r
}

// Describe implements Trace.
func (s Sine) Describe() string {
	return fmt.Sprintf("sine %.0f±%.0f rec/s, period %v", s.Mean, s.Amplitude, s.Period)
}

// Surge holds Base rate, then jumps to Peak during [Start, Start+Duration),
// then returns to Base. Exercises §5.5's reset-on-rate-change logic.
type Surge struct {
	Base, Peak float64
	Start      sim.Time
	Duration   time.Duration
}

// RateAt implements Trace.
func (s Surge) RateAt(t sim.Time) float64 {
	if t >= s.Start && t < s.Start+sim.Time(s.Duration) {
		return s.Peak
	}
	return s.Base
}

// Describe implements Trace.
func (s Surge) Describe() string {
	return fmt.Sprintf("surge %.0f→%.0f rec/s at %v for %v", s.Base, s.Peak, s.Start, s.Duration)
}

// Step is one segment of a piecewise-constant trace.
type Step struct {
	From sim.Time // segment start (inclusive)
	Rate float64
}

// Steps is a piecewise-constant trace defined by ascending segments. Times
// before the first segment use the first segment's rate.
type Steps []Step

// NewSteps validates and returns a step trace. Segments must be ascending.
func NewSteps(steps []Step) (Steps, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("ratetrace: empty step trace")
	}
	for i := 1; i < len(steps); i++ {
		if steps[i].From <= steps[i-1].From {
			return nil, fmt.Errorf("ratetrace: step %d at %v not after %v", i, steps[i].From, steps[i-1].From)
		}
	}
	return Steps(steps), nil
}

// RateAt implements Trace.
func (s Steps) RateAt(t sim.Time) float64 {
	// Binary search for the last segment with From <= t.
	i := sort.Search(len(s), func(i int) bool { return s[i].From > t })
	if i == 0 {
		return s[0].Rate
	}
	return s[i-1].Rate
}

// Describe implements Trace.
func (s Steps) Describe() string { return fmt.Sprintf("piecewise-constant, %d segments", len(s)) }

// UserStep is one segment of a user-population trace: the number of active
// users from a given instant.
type UserStep struct {
	From  sim.Time
	Users float64
}

// Users models a tenant's load as an evolving user population times a
// per-user event rate — the unit the ROADMAP's millions-of-users north star
// is denominated in. A tenant serving 2M users each emitting 0.005 events/s
// drives 10k rec/s; population changes (diurnal ramps, promotion spikes)
// move the aggregate rate piecewise. Deterministic and random-access like
// every other trace.
type Users struct {
	PerUserRate float64 // events per second per active user
	Population  []UserStep
}

// NewUsers validates and returns a user-population trace. Population
// segments must be ascending in time; rates and populations non-negative.
func NewUsers(perUserRate float64, population []UserStep) (*Users, error) {
	if perUserRate < 0 {
		return nil, fmt.Errorf("ratetrace: negative per-user rate %v", perUserRate)
	}
	if len(population) == 0 {
		return nil, fmt.Errorf("ratetrace: empty user population")
	}
	for i, p := range population {
		if p.Users < 0 {
			return nil, fmt.Errorf("ratetrace: negative population at segment %d", i)
		}
		if i > 0 && p.From <= population[i-1].From {
			return nil, fmt.Errorf("ratetrace: population segment %d at %v not after %v",
				i, p.From, population[i-1].From)
		}
	}
	return &Users{PerUserRate: perUserRate, Population: population}, nil
}

// UsersAt returns the active user population at time t.
func (u *Users) UsersAt(t sim.Time) float64 {
	i := sort.Search(len(u.Population), func(i int) bool { return u.Population[i].From > t })
	if i == 0 {
		return u.Population[0].Users
	}
	return u.Population[i-1].Users
}

// RateAt implements Trace.
func (u *Users) RateAt(t sim.Time) float64 { return u.UsersAt(t) * u.PerUserRate }

// Describe implements Trace.
func (u *Users) Describe() string {
	peak := 0.0
	for _, p := range u.Population {
		if p.Users > peak {
			peak = p.Users
		}
	}
	return fmt.Sprintf("users ≤%.2gM × %.3g ev/s/user, %d segments",
		peak/1e6, u.PerUserRate, len(u.Population))
}

// NextChange implements Stepper: the next population segment boundary, so
// RecordsIn integrates the piecewise-constant aggregate rate exactly.
func (u *Users) NextChange(t sim.Time) sim.Time {
	i := sort.Search(len(u.Population), func(i int) bool { return u.Population[i].From > t })
	if i == len(u.Population) {
		return sim.Infinity
	}
	return u.Population[i].From
}

// Scaled multiplies an inner trace by Factor — handy for replaying a shape
// at a workload-appropriate magnitude.
type Scaled struct {
	Inner  Trace
	Factor float64
}

// RateAt implements Trace.
func (s Scaled) RateAt(t sim.Time) float64 { return s.Factor * s.Inner.RateAt(t) }

// Describe implements Trace.
func (s Scaled) Describe() string {
	return fmt.Sprintf("%.2fx (%s)", s.Factor, s.Inner.Describe())
}

// Clamped restricts an inner trace to [Min, Max], mirroring §6.2.2's note
// that systems restrict instantaneous surge rates (e.g. Kafka quota).
type Clamped struct {
	Inner    Trace
	Min, Max float64
}

// RateAt implements Trace.
func (c Clamped) RateAt(t sim.Time) float64 {
	r := c.Inner.RateAt(t)
	if r < c.Min {
		return c.Min
	}
	if r > c.Max {
		return c.Max
	}
	return r
}

// Describe implements Trace.
func (c Clamped) Describe() string {
	return fmt.Sprintf("clamp [%.0f, %.0f] of (%s)", c.Min, c.Max, c.Inner.Describe())
}

// Stepper is implemented by piecewise-constant traces. NextChange returns
// the earliest instant strictly after t at which the rate may change
// (sim.Infinity if it never does), letting RecordsIn integrate exactly with
// one RateAt call per constant segment.
type Stepper interface {
	NextChange(t sim.Time) sim.Time
}

// NextChange implements Stepper: a constant never changes.
func (c Constant) NextChange(sim.Time) sim.Time { return sim.Infinity }

// NextChange implements Stepper: the next dwell-slot boundary.
func (u *UniformBand) NextChange(t sim.Time) sim.Time {
	slot := t / sim.Time(u.Dwell)
	return (slot + 1) * sim.Time(u.Dwell)
}

// NextChange implements Stepper: the surge's start and end edges.
func (s Surge) NextChange(t sim.Time) sim.Time {
	if t < s.Start {
		return s.Start
	}
	if end := s.Start + sim.Time(s.Duration); t < end {
		return end
	}
	return sim.Infinity
}

// NextChange implements Stepper: the next segment boundary.
func (s Steps) NextChange(t sim.Time) sim.Time {
	i := sort.Search(len(s), func(i int) bool { return s[i].From > t })
	if i == len(s) {
		return sim.Infinity
	}
	return s[i].From
}

// NextChange implements Stepper by delegating to the inner trace.
func (s Scaled) NextChange(t sim.Time) sim.Time {
	if st, ok := s.Inner.(Stepper); ok {
		return st.NextChange(t)
	}
	return t + 1 // unknown inner: force fine sampling in RecordsIn
}

// NextChange implements Stepper by delegating to the inner trace. Clamping a
// piecewise-constant trace stays piecewise-constant on the same boundaries.
func (c Clamped) NextChange(t sim.Time) sim.Time {
	if st, ok := c.Inner.(Stepper); ok {
		return st.NextChange(t)
	}
	return t + 1
}

// RecordsIn integrates a trace over [from, to), returning the (fractional)
// number of records arriving in the interval. Traces implementing Stepper
// integrate exactly segment by segment; other traces (e.g. Sine) fall back
// to midpoint sampling at millisecond resolution.
func RecordsIn(tr Trace, from, to sim.Time) float64 {
	if to <= from {
		return 0
	}
	if st, ok := tr.(Stepper); ok {
		total := 0.0
		for t := from; t < to; {
			next := st.NextChange(t)
			if next <= t { // defensive: a broken Stepper must not hang us
				next = t + sim.Time(time.Millisecond)
			}
			if next > to {
				next = to
			}
			total += tr.RateAt(t) * (next - t).Seconds()
			t = next
		}
		return total
	}
	const step = time.Millisecond
	total := 0.0
	for t := from; t < to; {
		next := t + sim.Time(step)
		if next > to {
			next = to
		}
		mid := t + (next-t)/2
		total += tr.RateAt(mid) * (next - t).Seconds()
		t = next
	}
	return total
}

// Sample evaluates the trace every interval over [0, horizon) and returns
// (times in seconds, rates). Used to render Fig 5.
func Sample(tr Trace, horizon sim.Time, interval time.Duration) (ts, rates []float64) {
	for t := sim.Time(0); t < horizon; t += sim.Time(interval) {
		ts = append(ts, t.Seconds())
		rates = append(rates, tr.RateAt(t))
	}
	return ts, rates
}
