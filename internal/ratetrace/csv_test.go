package ratetrace

import (
	"strings"
	"testing"
)

func TestFromCSV(t *testing.T) {
	in := "seconds,rate\n0,1000\n10,2500\n25.5,500\n"
	tr, err := FromCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t    float64
		want float64
	}{
		{0, 1000}, {9.9, 1000}, {10, 2500}, {25.4, 2500}, {25.5, 500}, {100, 500},
	}
	for _, c := range cases {
		if got := tr.RateAt(sec(c.t)); got != c.want {
			t.Fatalf("RateAt(%vs)=%v, want %v", c.t, got, c.want)
		}
	}
	// Exact integration through the Stepper interface.
	if n := RecordsIn(tr, 0, sec(20)); !near(n, 10*1000+10*2500, 1e-6) {
		t.Fatalf("RecordsIn=%v", n)
	}
}

func TestFromCSVNoHeader(t *testing.T) {
	tr, err := FromCSV(strings.NewReader("0,42\n5,84\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.RateAt(0) != 42 || tr.RateAt(sec(6)) != 84 {
		t.Fatal("headerless CSV misparsed")
	}
}

func TestFromCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"header only":     "seconds,rate\n",
		"bad rate":        "0,abc\n",
		"bad later time":  "0,1\nxyz,2\n",
		"negative time":   "-5,1\n",
		"negative rate":   "0,-1\n",
		"non-ascending":   "0,1\n10,2\n5,3\n",
		"wrong field num": "0,1,2\n",
	}
	for name, in := range cases {
		if _, err := FromCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}
