package ratetrace

import (
	"strings"
	"testing"
	"time"

	"nostop/internal/sim"
)

func TestUsersRateAndSteps(t *testing.T) {
	u, err := NewUsers(0.005, []UserStep{
		{From: 0, Users: 2e6},
		{From: sim.Time(10 * time.Minute), Users: 3e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := u.RateAt(0); got != 10000 {
		t.Errorf("RateAt(0) = %v, want 10000 (2M users × 0.005)", got)
	}
	if got := u.RateAt(sim.Time(9 * time.Minute)); got != 10000 {
		t.Errorf("RateAt(9m) = %v, want 10000", got)
	}
	if got := u.RateAt(sim.Time(10 * time.Minute)); got != 15000 {
		t.Errorf("RateAt(10m) = %v, want 15000 after the step", got)
	}
	if got := u.NextChange(0); got != sim.Time(10*time.Minute) {
		t.Errorf("NextChange(0) = %v, want the 10m boundary", got)
	}
	if got := u.NextChange(sim.Time(10 * time.Minute)); got != sim.Infinity {
		t.Errorf("NextChange(10m) = %v, want Infinity", got)
	}
	if d := u.Describe(); !strings.Contains(d, "users") {
		t.Errorf("Describe() = %q, want the users denomination", d)
	}
}

// The Stepper contract makes RecordsIn integrate the piecewise-constant
// aggregate exactly across a population step.
func TestUsersRecordsInExact(t *testing.T) {
	u, err := NewUsers(0.01, []UserStep{
		{From: 0, Users: 1e6},
		{From: sim.Time(time.Minute), Users: 2e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 60s at 10k/s + 60s at 20k/s.
	got := RecordsIn(u, 0, sim.Time(2*time.Minute))
	if want := 600000.0 + 1200000.0; got != want {
		t.Errorf("RecordsIn = %v, want %v", got, want)
	}
}

func TestUsersValidation(t *testing.T) {
	if _, err := NewUsers(-1, []UserStep{{From: 0, Users: 1}}); err == nil {
		t.Error("negative per-user rate accepted")
	}
	if _, err := NewUsers(1, nil); err == nil {
		t.Error("empty population accepted")
	}
	if _, err := NewUsers(1, []UserStep{{From: 0, Users: -5}}); err == nil {
		t.Error("negative population accepted")
	}
	if _, err := NewUsers(1, []UserStep{{From: 5, Users: 1}, {From: 5, Users: 2}}); err == nil {
		t.Error("non-ascending segments accepted")
	}
}
