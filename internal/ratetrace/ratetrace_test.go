package ratetrace

import (
	"math"
	"testing"
	"time"

	"nostop/internal/rng"
	"nostop/internal/sim"
)

func sec(n float64) sim.Time { return sim.Time(n * float64(time.Second)) }

func TestConstant(t *testing.T) {
	c := Constant{Rate: 5000}
	for _, tm := range []sim.Time{0, sec(1), sec(1000)} {
		if c.RateAt(tm) != 5000 {
			t.Fatalf("RateAt(%v)=%v", tm, c.RateAt(tm))
		}
	}
	if c.Describe() == "" {
		t.Error("empty description")
	}
}

func TestUniformBandStaysInRange(t *testing.T) {
	u := NewUniformBand(7000, 13000, 5*time.Second, rng.New(1))
	for i := 0; i < 2000; i++ {
		r := u.RateAt(sec(float64(i) * 0.25))
		if r < 7000 || r > 13000 {
			t.Fatalf("rate %v outside [7000,13000]", r)
		}
	}
}

func TestUniformBandHoldsWithinDwell(t *testing.T) {
	u := NewUniformBand(100, 200, 10*time.Second, rng.New(2))
	a := u.RateAt(sec(12))
	b := u.RateAt(sec(19.9))
	if a != b {
		t.Fatalf("rate changed within dwell slot: %v vs %v", a, b)
	}
	c := u.RateAt(sec(20.1))
	if a == c {
		t.Log("adjacent slots coincidentally equal (allowed but unlikely)")
	}
}

func TestUniformBandDeterministicRandomAccess(t *testing.T) {
	u := NewUniformBand(100, 200, time.Second, rng.New(3))
	// Query out of order, then in order: must agree.
	later := u.RateAt(sec(50))
	earlier := u.RateAt(sec(10))
	if u.RateAt(sec(50)) != later || u.RateAt(sec(10)) != earlier {
		t.Fatal("RateAt not deterministic under random access")
	}
}

func TestUniformBandActuallyVaries(t *testing.T) {
	u := NewUniformBand(100, 200, time.Second, rng.New(4))
	distinct := map[float64]bool{}
	for i := 0; i < 50; i++ {
		distinct[u.RateAt(sec(float64(i)))] = true
	}
	if len(distinct) < 10 {
		t.Fatalf("only %d distinct rates over 50 slots", len(distinct))
	}
}

func TestUniformBandValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewUniformBand(1, 2, 0, rng.New(1)) },
		func() { NewUniformBand(5, 2, time.Second, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid UniformBand did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestSine(t *testing.T) {
	s := Sine{Mean: 1000, Amplitude: 500, Period: 60 * time.Second}
	if got := s.RateAt(0); !near(got, 1000, 1e-9) {
		t.Fatalf("RateAt(0)=%v", got)
	}
	if got := s.RateAt(sec(15)); !near(got, 1500, 1e-6) {
		t.Fatalf("RateAt(quarter)=%v", got)
	}
	if got := s.RateAt(sec(45)); !near(got, 500, 1e-6) {
		t.Fatalf("RateAt(3/4)=%v", got)
	}
}

func TestSineClampsAtZero(t *testing.T) {
	s := Sine{Mean: 100, Amplitude: 500, Period: 10 * time.Second}
	for i := 0; i < 100; i++ {
		if r := s.RateAt(sec(float64(i) / 10)); r < 0 {
			t.Fatalf("negative rate %v", r)
		}
	}
}

func TestSineZeroPeriod(t *testing.T) {
	s := Sine{Mean: 77, Amplitude: 10, Period: 0}
	if s.RateAt(sec(5)) != 77 {
		t.Fatal("zero-period sine should return mean")
	}
}

func TestSurge(t *testing.T) {
	s := Surge{Base: 1000, Peak: 5000, Start: sec(60), Duration: 30 * time.Second}
	cases := []struct {
		t    sim.Time
		want float64
	}{
		{0, 1000}, {sec(59.9), 1000}, {sec(60), 5000}, {sec(89.9), 5000}, {sec(90), 1000},
	}
	for _, c := range cases {
		if got := s.RateAt(c.t); got != c.want {
			t.Fatalf("RateAt(%v)=%v want %v", c.t, got, c.want)
		}
	}
}

func TestSteps(t *testing.T) {
	s, err := NewSteps([]Step{{0, 100}, {sec(10), 200}, {sec(20), 50}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t    sim.Time
		want float64
	}{
		{0, 100}, {sec(5), 100}, {sec(10), 200}, {sec(15), 200}, {sec(25), 50},
	}
	for _, c := range cases {
		if got := s.RateAt(c.t); got != c.want {
			t.Fatalf("RateAt(%v)=%v want %v", c.t, got, c.want)
		}
	}
}

func TestStepsValidation(t *testing.T) {
	if _, err := NewSteps(nil); err == nil {
		t.Error("empty steps accepted")
	}
	if _, err := NewSteps([]Step{{sec(10), 1}, {sec(5), 2}}); err == nil {
		t.Error("non-ascending steps accepted")
	}
	if _, err := NewSteps([]Step{{sec(5), 1}, {sec(5), 2}}); err == nil {
		t.Error("duplicate step times accepted")
	}
}

func TestScaledAndClamped(t *testing.T) {
	base := Constant{Rate: 100}
	if got := (Scaled{Inner: base, Factor: 2.5}).RateAt(0); got != 250 {
		t.Fatalf("Scaled=%v", got)
	}
	cl := Clamped{Inner: Surge{Base: 10, Peak: 10000, Start: 0, Duration: time.Second}, Min: 50, Max: 500}
	if got := cl.RateAt(0); got != 500 {
		t.Fatalf("clamp max: %v", got)
	}
	if got := cl.RateAt(sec(2)); got != 50 {
		t.Fatalf("clamp min: %v", got)
	}
}

func TestRecordsInConstantExact(t *testing.T) {
	n := RecordsIn(Constant{Rate: 1000}, 0, sec(2.5))
	if !near(n, 2500, 1e-6) {
		t.Fatalf("RecordsIn=%v want 2500", n)
	}
}

func TestRecordsInEmptyInterval(t *testing.T) {
	if RecordsIn(Constant{Rate: 1000}, sec(5), sec(5)) != 0 {
		t.Error("empty interval should integrate to 0")
	}
	if RecordsIn(Constant{Rate: 1000}, sec(5), sec(4)) != 0 {
		t.Error("inverted interval should integrate to 0")
	}
}

func TestRecordsInStepBoundary(t *testing.T) {
	s, _ := NewSteps([]Step{{0, 1000}, {sec(1), 3000}})
	n := RecordsIn(s, 0, sec(2))
	if !near(n, 4000, 1) {
		t.Fatalf("RecordsIn across step=%v want ~4000", n)
	}
}

func TestRecordsInSineApproximation(t *testing.T) {
	// Integral of a full sine period equals mean*period.
	s := Sine{Mean: 1000, Amplitude: 800, Period: 4 * time.Second}
	n := RecordsIn(s, 0, sec(4))
	if !near(n, 4000, 5) {
		t.Fatalf("RecordsIn over full period=%v want ~4000", n)
	}
}

func TestRecordsInAdditivity(t *testing.T) {
	// Property: integral over [a,c) = [a,b) + [b,c) at ms-aligned bounds.
	u := NewUniformBand(500, 1500, time.Second, rng.New(9))
	whole := RecordsIn(u, 0, sec(10))
	split := RecordsIn(u, 0, sec(4)) + RecordsIn(u, sec(4), sec(10))
	if !near(whole, split, 1e-6) {
		t.Fatalf("not additive: %v vs %v", whole, split)
	}
}

func TestStepperBoundaries(t *testing.T) {
	if (Constant{Rate: 1}).NextChange(sec(5)) != sim.Infinity {
		t.Error("Constant should never change")
	}
	u := NewUniformBand(1, 2, 4*time.Second, rng.New(1))
	if got := u.NextChange(sec(5)); got != sec(8) {
		t.Errorf("UniformBand NextChange(5s)=%v, want 8s", got)
	}
	if got := u.NextChange(sec(8)); got != sec(12) {
		t.Errorf("UniformBand NextChange(8s)=%v, want 12s", got)
	}
	s := Surge{Base: 1, Peak: 2, Start: sec(10), Duration: 5 * time.Second}
	if s.NextChange(0) != sec(10) || s.NextChange(sec(12)) != sec(15) || s.NextChange(sec(20)) != sim.Infinity {
		t.Error("Surge NextChange edges wrong")
	}
	st, _ := NewSteps([]Step{{0, 1}, {sec(3), 2}})
	if st.NextChange(sec(1)) != sec(3) || st.NextChange(sec(3)) != sim.Infinity {
		t.Error("Steps NextChange wrong")
	}
	// Wrappers delegate.
	if (Scaled{Inner: s, Factor: 2}).NextChange(0) != sec(10) {
		t.Error("Scaled NextChange not delegated")
	}
	if (Clamped{Inner: s, Min: 0, Max: 10}).NextChange(0) != sec(10) {
		t.Error("Clamped NextChange not delegated")
	}
	// Wrapping a non-Stepper forces fine sampling, never hangs.
	if nc := (Scaled{Inner: Sine{Mean: 1, Period: time.Second}, Factor: 1}).NextChange(sec(1)); nc <= sec(1) {
		t.Error("wrapper over non-Stepper returned non-advancing boundary")
	}
}

func TestRecordsInExactAcrossDwells(t *testing.T) {
	// Stepper integration must be exact: sum rate·dwell over slots.
	u := NewUniformBand(100, 200, time.Second, rng.New(21))
	var want float64
	for i := 0; i < 10; i++ {
		want += u.RateAt(sec(float64(i))) * 1.0
	}
	got := RecordsIn(u, 0, sec(10))
	if !near(got, want, 1e-9) {
		t.Fatalf("RecordsIn=%v want %v", got, want)
	}
}

func TestRecordsInPartialSegments(t *testing.T) {
	s := Surge{Base: 100, Peak: 1000, Start: sec(2), Duration: 3 * time.Second}
	// [1.5, 6.5): 0.5s at 100 + 3s at 1000 + 1.5s at 100 = 50+3000+150.
	got := RecordsIn(s, sec(1.5), sec(6.5))
	if !near(got, 3200, 1e-9) {
		t.Fatalf("RecordsIn=%v want 3200", got)
	}
}

func TestSample(t *testing.T) {
	ts, rates := Sample(Constant{Rate: 42}, sec(5), time.Second)
	if len(ts) != 5 || len(rates) != 5 {
		t.Fatalf("Sample lengths %d/%d", len(ts), len(rates))
	}
	if ts[0] != 0 || ts[4] != 4 {
		t.Fatalf("sample times %v", ts)
	}
	for _, r := range rates {
		if r != 42 {
			t.Fatalf("rates %v", rates)
		}
	}
}

func TestPaperWorkloadBands(t *testing.T) {
	// §6.2.2 bands: verify each configured band produces rates inside it.
	bands := []struct {
		name     string
		min, max float64
	}{
		{"LogisticRegression", 7000, 13000},
		{"LinearRegression", 80000, 120000},
		{"WordCount", 110000, 190000},
		{"PageAnalyze", 170000, 230000},
	}
	for _, b := range bands {
		u := NewUniformBand(b.min, b.max, 5*time.Second, rng.New(77).Split(b.name))
		for i := 0; i < 200; i++ {
			r := u.RateAt(sec(float64(i) * 2.5))
			if r < b.min || r > b.max {
				t.Fatalf("%s: rate %v outside [%v,%v]", b.name, r, b.min, b.max)
			}
		}
	}
}

func near(a, b, eps float64) bool { return math.Abs(a-b) <= eps }
