package ratetrace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"nostop/internal/sim"
)

// FromCSV reads a piecewise-constant rate trace from CSV rows of
// "seconds,rate" (an optional header row is skipped). Timestamps must be
// ascending and non-negative; the first segment's rate applies from time
// zero. This is the hook for replaying measured production traces in place
// of the synthetic generators.
func FromCSV(r io.Reader) (Steps, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	cr.TrimLeadingSpace = true
	var steps []Step
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("ratetrace: csv line %d: %w", line, err)
		}
		secs, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			if line == 1 {
				continue // header row
			}
			return nil, fmt.Errorf("ratetrace: csv line %d: bad time %q", line, rec[0])
		}
		rate, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("ratetrace: csv line %d: bad rate %q", line, rec[1])
		}
		if secs < 0 || rate < 0 {
			return nil, fmt.Errorf("ratetrace: csv line %d: negative value", line)
		}
		steps = append(steps, Step{
			From: sim.Time(secs * float64(time.Second)),
			Rate: rate,
		})
	}
	return NewSteps(steps)
}
