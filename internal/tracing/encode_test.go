package tracing

import (
	"encoding/json"
	"fmt"
	"testing"

	"nostop/internal/rng"
)

// encodeOne runs the hand-rolled encoder on a single event.
func encodeOne(t *testing.T, e *Event) string {
	t.Helper()
	buf, err := appendEvent(nil, e)
	if err != nil {
		t.Fatalf("appendEvent: %v", err)
	}
	return string(buf)
}

// marshalOne is the reference encoding the golden traces were produced with.
func marshalOne(t *testing.T, e *Event) string {
	t.Helper()
	blob, err := json.Marshal(e)
	if err != nil {
		t.Fatalf("json.Marshal: %v", err)
	}
	return string(blob)
}

// TestEncodeMatchesEncodingJSONFixed pins the encoder on the hand-picked
// hard cases: HTML escapes, control characters, shorthand escapes, U+2028/9
// line separators, invalid UTF-8, negative and extreme integers, floats,
// omitempty boundaries.
func TestEncodeMatchesEncodingJSONFixed(t *testing.T) {
	dur := int64(12345)
	zero := int64(0)
	cases := []Event{
		{Name: "plain", Ph: "i", Ts: 0, Pid: 1, Tid: 2},
		{Name: "cat set", Cat: "engine", Ph: "X", Ts: 42, Dur: &dur, Pid: 1, Tid: 1},
		{Name: "zero dur", Ph: "X", Ts: 42, Dur: &zero, Pid: 1, Tid: 1},
		{Name: "scope", Ph: "i", Ts: 1, Pid: 1, Tid: 1, S: "t"},
		{Name: "html <&> \"quoted\" back\\slash", Ph: "i", Ts: 1, Pid: 1, Tid: 1},
		{Name: "ctrl \x00\x01\x08\x0c\x1f tab\t nl\n cr\r", Ph: "i", Ts: 1, Pid: 1, Tid: 1},
		{Name: "unicode é 漢字 emoji 🎉", Ph: "i", Ts: 1, Pid: 1, Tid: 1},
		{Name: "line seps \u2028 and \u2029", Ph: "i", Ts: 1, Pid: 1, Tid: 1},
		{Name: "bad utf8 \xff\xfe tail", Ph: "i", Ts: 1, Pid: 1, Tid: 1},
		{Name: "negatives", Ph: "i", Ts: -987654321, Pid: -3, Tid: -4},
		{Name: "args", Ph: "i", Ts: 1, Pid: 1, Tid: 1, Args: Args{
			"records": int64(9223372036854775807), "queue": 0, "faulty": true,
			"rate": 1234.5678, "tiny": 1e-9, "big": 1e21, "neg": -0.25,
			"label": "a<b>c&d", "nil": nil, "u": uint64(18446744073709551615),
		}},
		{Name: "one arg", Ph: "C", Ts: 1, Pid: 1, Tid: 0, Args: Args{"batches": 3}},
		{Name: "many args", Ph: "i", Ts: 1, Pid: 1, Tid: 1, Args: Args{
			"a": 1, "b": 2, "c": 3, "d": 4, "e": 5, "f": 6, "g": 7, "h": 8, "i": 9, "j": 10,
		}},
	}
	for _, e := range cases {
		e := e
		got, want := encodeOne(t, &e), marshalOne(t, &e)
		if got != want {
			t.Errorf("event %q:\n got  %s\n want %s", e.Name, got, want)
		}
	}
}

// TestEncodeMatchesEncodingJSONRandom drives both encoders with seeded
// random events — names sampled from a byte alphabet rich in escape-relevant
// characters, arg values across every type the instrumentation emits — and
// requires byte equality on all of them.
func TestEncodeMatchesEncodingJSONRandom(t *testing.T) {
	r := rng.New(1234).Split("encode-equivalence").Rand()
	alphabet := []rune{'a', 'z', '"', '\\', '<', '>', '&', '\n', '\t', '\x00', '\x1f',
		'é', '漢', '\u2028', '\u2029', '\ufffd', '🎉', ' '}
	randString := func() string {
		n := r.Intn(12)
		out := make([]rune, 0, n+1)
		for i := 0; i < n; i++ {
			out = append(out, alphabet[r.Intn(len(alphabet))])
		}
		s := string(out)
		if r.Intn(4) == 0 {
			s += string([]byte{0xff}) // invalid UTF-8 tail
		}
		return s
	}
	randValue := func() any {
		switch r.Intn(7) {
		case 0:
			return r.Int63() - r.Int63()
		case 1:
			return int(r.Intn(1000) - 500)
		case 2:
			return r.Float64() * 1e6
		case 3:
			return r.Intn(2) == 0
		case 4:
			return randString()
		case 5:
			return uint64(r.Int63())
		default:
			return nil
		}
	}
	phases := []string{PhaseComplete, PhaseInstant, PhaseCounter, PhaseMetadata}
	for i := 0; i < 2000; i++ {
		e := Event{
			Name: randString(),
			Ph:   phases[r.Intn(len(phases))],
			Ts:   r.Int63() - r.Int63(),
			Pid:  r.Intn(10),
			Tid:  r.Intn(10),
		}
		if r.Intn(2) == 0 {
			e.Cat = randString()
		}
		if r.Intn(2) == 0 {
			d := r.Int63()
			e.Dur = &d
		}
		if r.Intn(2) == 0 {
			e.S = "t"
		}
		if n := r.Intn(6); n > 0 {
			e.Args = Args{}
			for j := 0; j < n; j++ {
				e.Args[fmt.Sprintf("k%d-%s", j, randString())] = randValue()
			}
		}
		got, want := encodeOne(t, &e), marshalOne(t, &e)
		if got != want {
			t.Fatalf("iteration %d diverged:\n got  %s\n want %s", i, got, want)
		}
	}
}
