package tracing

import (
	"testing"
	"time"

	"nostop/internal/sim"
)

// A nil *Tracer is the disabled-tracing configuration; with no args payload
// every record call must be a zero-allocation no-op. (Call sites that build
// an Args map must gate on their own traceOn flag — the map literal itself
// allocates before the method is entered.)
func TestAllocsNilTracer(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Span(1, 1, "cat", "name", sim.Time(0), time.Millisecond, nil)
		tr.Instant(1, 1, "cat", "name", nil)
		tr.Counter(1, "name", nil)
		tr.NameProcess(1, "p")
		tr.NameThread(1, 1, "t")
	})
	if allocs != 0 {
		t.Fatalf("nil-Tracer ops allocate %.1f/op, want 0", allocs)
	}
}
