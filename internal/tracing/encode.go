// Event encoding for the tracer hot path.
//
// Events are serialised the moment they are recorded, into one growing byte
// buffer owned by the tracer, instead of being retained as Event structs and
// json.Marshal'ed at export time. That removes the per-event struct copy,
// the per-span *int64 escape, and the per-event Marshal allocation from the
// record path — WriteJSON becomes a straight copy of pre-encoded bytes.
//
// The encoder MUST stay byte-identical to encoding/json on the Event struct:
// the golden trace artifacts and the determinism contract both pin exact
// bytes. TestEncodeMatchesEncodingJSON cross-checks the two encoders on
// randomized events; anything this file cannot provably format the same way
// (floats, exotic arg types) is delegated to json.Marshal.
package tracing

import (
	"encoding/json"
	"sort"
	"unicode/utf8"
)

// appendEvent appends the JSON encoding of e, matching json.Marshal(&e)
// byte-for-byte (field order, omitempty semantics, sorted args keys, HTML
// escaping).
func appendEvent(buf []byte, e *Event) ([]byte, error) {
	buf = append(buf, `{"name":`...)
	buf = appendString(buf, e.Name)
	if e.Cat != "" {
		buf = append(buf, `,"cat":`...)
		buf = appendString(buf, e.Cat)
	}
	buf = append(buf, `,"ph":`...)
	buf = appendString(buf, e.Ph)
	buf = append(buf, `,"ts":`...)
	buf = appendInt(buf, e.Ts)
	if e.Dur != nil {
		buf = append(buf, `,"dur":`...)
		buf = appendInt(buf, *e.Dur)
	}
	buf = append(buf, `,"pid":`...)
	buf = appendInt(buf, int64(e.Pid))
	buf = append(buf, `,"tid":`...)
	buf = appendInt(buf, int64(e.Tid))
	if e.S != "" {
		buf = append(buf, `,"s":`...)
		buf = appendString(buf, e.S)
	}
	if len(e.Args) > 0 {
		buf = append(buf, `,"args":`...)
		var err error
		buf, err = appendArgs(buf, e.Args)
		if err != nil {
			return buf, err
		}
	}
	return append(buf, '}'), nil
}

// appendArgs appends an args object with keys in sorted order (matching
// encoding/json's map rendering). The common case of a handful of keys sorts
// on the stack.
func appendArgs(buf []byte, args Args) ([]byte, error) {
	var stack [8]string
	keys := stack[:0]
	if len(args) > len(stack) {
		keys = make([]string, 0, len(args)) //nostop:allow hotalloc -- >8 keys only; the common case stays on the stack array
	}
	//nostop:allow hotalloc -- Args maps are tiny; keys are sorted below for determinism
	for k := range args {
		keys = append(keys, k) //nostop:allow hotalloc -- bounded by the stack array in the common case
	}
	if len(keys) > 1 {
		sort.Strings(keys)
	}
	buf = append(buf, '{')
	for i, k := range keys {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = appendString(buf, k)
		buf = append(buf, ':')
		var err error
		buf, err = appendValue(buf, args[k])
		if err != nil {
			return buf, err
		}
	}
	return append(buf, '}'), nil
}

// appendValue appends one arg value. Integer, bool, and string values — the
// entire steady-state vocabulary of the instrumentation call sites — are
// formatted in place; everything else (floats, slices, nested maps) goes
// through json.Marshal so the bytes provably match.
func appendValue(buf []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(buf, `null`...), nil
	case bool:
		if x {
			return append(buf, `true`...), nil
		}
		return append(buf, `false`...), nil
	case string:
		return appendString(buf, x), nil
	case int:
		return appendInt(buf, int64(x)), nil
	case int8:
		return appendInt(buf, int64(x)), nil
	case int16:
		return appendInt(buf, int64(x)), nil
	case int32:
		return appendInt(buf, int64(x)), nil
	case int64:
		return appendInt(buf, x), nil
	case uint:
		return appendUint(buf, uint64(x)), nil
	case uint8:
		return appendUint(buf, uint64(x)), nil
	case uint16:
		return appendUint(buf, uint64(x)), nil
	case uint32:
		return appendUint(buf, uint64(x)), nil
	case uint64:
		return appendUint(buf, x), nil
	default:
		blob, err := json.Marshal(v)
		if err != nil {
			return buf, err
		}
		return append(buf, blob...), nil
	}
}

// appendInt formats a signed integer (json renders integers as plain
// decimal).
func appendInt(buf []byte, v int64) []byte {
	if v < 0 {
		buf = append(buf, '-')
		return appendUint(buf, uint64(-v))
	}
	return appendUint(buf, uint64(v))
}

func appendUint(buf []byte, v uint64) []byte {
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(buf, tmp[i:]...)
}

const hexDigits = "0123456789abcdef"

// jsonSafe marks bytes encoding/json emits verbatim inside a string: ASCII
// printables except '"', '\\', and the HTML-escaped '<', '>', '&'.
var jsonSafe = [256]bool{}

func init() {
	for c := 0x20; c < 0x7f; c++ {
		jsonSafe[c] = true
	}
	jsonSafe['"'] = false
	jsonSafe['\\'] = false
	jsonSafe['<'] = false
	jsonSafe['>'] = false
	jsonSafe['&'] = false
}

// appendString appends a JSON string literal exactly as encoding/json's
// default (HTML-escaping) encoder renders it: '<', '>', '&' as <-style
// escapes, control characters escaped (with \n, \r, \t shorthands), U+2028
// and U+2029 escaped, and invalid UTF-8 replaced by �.
func appendString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if jsonSafe[b] {
				i++
				continue
			}
			buf = append(buf, s[start:i]...)
			switch b {
			case '\\':
				buf = append(buf, '\\', '\\')
			case '"':
				buf = append(buf, '\\', '"')
			case '\b':
				buf = append(buf, '\\', 'b')
			case '\f':
				buf = append(buf, '\\', 'f')
			case '\n':
				buf = append(buf, '\\', 'n')
			case '\r':
				buf = append(buf, '\\', 'r')
			case '\t':
				buf = append(buf, '\\', 't')
			default:
				// Control characters and the HTML trio.
				buf = append(buf, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xf])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			// encoding/json emits the six-character escape for invalid UTF-8.
			buf = append(buf, s[start:i]...)
			buf = append(buf, `\ufffd`...)
			i++
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			buf = append(buf, s[start:i]...)
			buf = append(buf, `\u202`...)
			buf = append(buf, hexDigits[r&0xf])
			i += size
			start = i
			continue
		}
		i += size
	}
	buf = append(buf, s[start:]...)
	return append(buf, '"')
}
