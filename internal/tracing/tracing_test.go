package tracing

import (
	"strings"
	"testing"
	"time"

	"nostop/internal/sim"
)

// buildTrace records one event of each phase on a fresh clock.
func buildTrace(maxEvents int) *Tracer {
	clock := sim.NewClock()
	tr := New(clock, maxEvents)
	tr.NameProcess(1, "engine")
	tr.NameThread(1, 2, "executors")
	clock.At(5*sim.Time(time.Second), func() {
		tr.Instant(1, 2, "engine", "cut batch 0", Args{"records": 100})
		tr.Counter(1, "queue", Args{"batches": 1})
		tr.Span(1, 2, "engine", "batch 0", clock.Now(), 2*time.Second, Args{"attempt": 1})
	})
	clock.RunUntil(10 * sim.Time(time.Second))
	return tr
}

// TestWriteJSONValidates checks the emitted file parses as a Chrome
// trace_event object and round-trips through Validate with the right count.
func TestWriteJSONValidates(t *testing.T) {
	tr := buildTrace(0)
	var buf strings.Builder
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := Validate(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("Validate: %v\ntrace:\n%s", err, buf.String())
	}
	if n != tr.Len() {
		t.Errorf("Validate counted %d events, tracer recorded %d", n, tr.Len())
	}
	out := buf.String()
	for _, want := range []string{
		`"displayTimeUnit":"ms"`,
		`"name":"cut batch 0"`,
		`"ph":"X"`,
		`"ts":5000000`, // 5 s in µs
		`"dur":2000000`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

// TestWriteJSONByteIdentical checks that two identical recordings serialize
// byte for byte — the trace half of the determinism contract.
func TestWriteJSONByteIdentical(t *testing.T) {
	var a, b strings.Builder
	if err := buildTrace(0).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildTrace(0).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same recordings serialized differently:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestEventCap checks the cap counts drops instead of growing the buffer.
func TestEventCap(t *testing.T) {
	tr := buildTrace(3)
	if tr.Len() != 3 {
		t.Errorf("Len() = %d, want 3 (capped)", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Errorf("Dropped() = %d, want 2", tr.Dropped())
	}
}

// TestNegativeDurationClamped checks an out-of-order span cannot emit a
// negative duration (which viewers reject).
func TestNegativeDurationClamped(t *testing.T) {
	clock := sim.NewClock()
	tr := New(clock, 0)
	tr.Span(1, 1, "c", "s", 0, -time.Second, nil)
	var buf strings.Builder
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(strings.NewReader(buf.String())); err != nil {
		t.Errorf("clamped span failed validation: %v", err)
	}
	if !strings.Contains(buf.String(), `"dur":0`) {
		t.Errorf("negative duration not clamped to 0:\n%s", buf.String())
	}
}

// TestNilTracerIsNoop checks the nil-sink contract instrumented code relies
// on.
func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	tr.Span(1, 1, "c", "s", 0, time.Second, nil)
	tr.Instant(1, 1, "c", "i", nil)
	tr.Counter(1, "n", nil)
	tr.NameProcess(1, "p")
	tr.NameThread(1, 1, "t")
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Error("nil tracer accumulated state")
	}
	var buf strings.Builder
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(strings.NewReader(buf.String())); err != nil {
		t.Errorf("nil tracer's empty file failed validation: %v", err)
	}
}

// TestValidateRejectsMalformed pins the checks `make trace` relies on.
func TestValidateRejectsMalformed(t *testing.T) {
	for name, doc := range map[string]string{
		"not json":       "nonsense",
		"no traceEvents": `{"other": []}`,
		"unnamed event":  `{"traceEvents":[{"name":"","ph":"i","ts":0,"pid":1,"tid":1}]}`,
		"unknown phase":  `{"traceEvents":[{"name":"x","ph":"Q","ts":0,"pid":1,"tid":1}]}`,
		"negative ts":    `{"traceEvents":[{"name":"x","ph":"i","ts":-1,"pid":1,"tid":1}]}`,
		"X without dur":  `{"traceEvents":[{"name":"x","ph":"X","ts":0,"pid":1,"tid":1}]}`,
	} {
		if _, err := Validate(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: Validate accepted %s", name, doc)
		}
	}
}
