// Package tracing records structured spans and events on the simulation
// clock and exports them as Chrome trace_event JSON, viewable in
// chrome://tracing, Perfetto, or any catapult-compatible viewer.
//
// The tracer covers the full record lifecycle of a run: producer→broker
// partition appends, receiver pulls, block/batch cuts, batch queue
// enter/exit, per-attempt task execution on the executor pool, SPSA
// perturbation and measurement windows, and fault-injection windows. A
// whole 2 h virtual run renders as one timeline, which is how EXPERIMENTS.md
// shape claims are audited below the per-batch aggregate.
//
// Determinism contract (DESIGN.md §5d): timestamps are virtual (sim.Time
// microseconds, never the wall clock), events are recorded in simulation
// order on the single-threaded kernel, and args objects serialise with
// encoding/json's sorted map keys — so two same-seed runs emit
// byte-identical trace files.
package tracing

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"nostop/internal/sim"
)

// Args carries the key→value annotations attached to an event. Values must
// be JSON-serialisable; encoding/json renders map keys in sorted order, so
// args never introduce nondeterminism.
type Args map[string]any

// Phase letters of the Chrome trace_event format used by this tracer.
const (
	// PhaseComplete is a complete span ("X"): ts + dur.
	PhaseComplete = "X"
	// PhaseInstant is an instant event ("i").
	PhaseInstant = "i"
	// PhaseCounter is a counter sample ("C") rendered as a stacked chart.
	PhaseCounter = "C"
	// PhaseMetadata is a metadata record ("M"), e.g. process/thread names.
	PhaseMetadata = "M"
)

// Event is one trace_event record. Field order mirrors the JSON output;
// encoding/json preserves struct field order, keeping files byte-stable.
type Event struct {
	// Name is the event title shown on the timeline slice.
	Name string `json:"name"`
	// Cat is the comma-free category tag used by viewer filters.
	Cat string `json:"cat,omitempty"`
	// Ph is the phase letter (one of the Phase* constants).
	Ph string `json:"ph"`
	// Ts is the event timestamp in virtual microseconds.
	Ts int64 `json:"ts"`
	// Dur is the span duration in microseconds (complete events only).
	Dur *int64 `json:"dur,omitempty"`
	// Pid is the process lane (one per simulated component).
	Pid int `json:"pid"`
	// Tid is the thread lane within the process.
	Tid int `json:"tid"`
	// S is the instant-event scope ("t" thread, "p" process, "g" global).
	S string `json:"s,omitempty"`
	// Args carries the structured annotations.
	Args Args `json:"args,omitempty"`
}

// Tracer accumulates events for one run. Not safe for concurrent use: like
// the rest of the simulator it lives on the single-threaded kernel. A nil
// *Tracer is a valid no-op sink, so instrumented code runs unconditionally.
//
// Events are encoded into buf the moment they are recorded (see encode.go),
// so the record path performs no per-event allocation once the buffer has
// grown to steady state, and WriteJSON is a straight byte copy.
type Tracer struct {
	clock   *sim.Clock
	buf     []byte // pre-encoded events, joined by ",\n"
	count   int
	max     int
	dropped int
	err     error // first encode failure, surfaced by WriteJSON
}

// DefaultMaxEvents bounds tracer memory: a 2 h virtual run at a 1 s batch
// interval emits well under a million events, so the cap only engages on
// runaway instrumentation.
const DefaultMaxEvents = 4 << 20

// New returns a tracer stamping events from the given clock. maxEvents
// bounds retained events (0 means DefaultMaxEvents); past the cap new
// events are counted as dropped rather than recorded, keeping the file
// deterministic instead of silently resizing.
func New(clock *sim.Clock, maxEvents int) *Tracer {
	if maxEvents <= 0 {
		maxEvents = DefaultMaxEvents
	}
	return &Tracer{clock: clock, max: maxEvents}
}

// add encodes one event into the buffer, honouring the cap. An event whose
// args fail to serialise is rolled back and the error is surfaced by
// WriteJSON, matching the export-time failure of the marshal-at-write
// design.
func (t *Tracer) add(e *Event) {
	if t == nil {
		return
	}
	if t.count >= t.max {
		t.dropped++
		return
	}
	mark := len(t.buf)
	if t.count > 0 {
		t.buf = append(t.buf, ',', '\n')
	}
	var err error
	t.buf, err = appendEvent(t.buf, e)
	if err != nil {
		t.buf = t.buf[:mark]
		if t.err == nil {
			t.err = err
		}
		return
	}
	t.count++
}

// micros converts a virtual instant to trace microseconds.
func micros(ts sim.Time) int64 { return int64(ts / sim.Time(time.Microsecond)) }

// Span records a complete span [start, start+dur) on the (pid, tid) lane.
// Spans may be recorded after the fact (at completion time, when the
// duration is known); the viewer orders by ts, not record order.
//nostop:hotpath
func (t *Tracer) Span(pid, tid int, cat, name string, start sim.Time, dur time.Duration, args Args) {
	if t == nil {
		return
	}
	d := int64(dur / time.Microsecond)
	if d < 0 {
		d = 0
	}
	e := Event{Name: name, Cat: cat, Ph: PhaseComplete, Ts: micros(start), Dur: &d, Pid: pid, Tid: tid, Args: args}
	t.add(&e)
}

// Instant records a zero-duration marker at the current virtual time with
// thread scope.
//nostop:hotpath
func (t *Tracer) Instant(pid, tid int, cat, name string, args Args) {
	if t == nil {
		return
	}
	e := Event{Name: name, Cat: cat, Ph: PhaseInstant, Ts: micros(t.clock.Now()), Pid: pid, Tid: tid, S: "t", Args: args}
	t.add(&e)
}

// Counter records a counter sample at the current virtual time; the viewer
// renders each named series as a stacked area chart. Values must be
// numeric.
//nostop:hotpath
func (t *Tracer) Counter(pid int, name string, values Args) {
	if t == nil {
		return
	}
	e := Event{Name: name, Ph: PhaseCounter, Ts: micros(t.clock.Now()), Pid: pid, Tid: 0, Args: values}
	t.add(&e)
}

// NameProcess attaches a human-readable name to a pid lane.
func (t *Tracer) NameProcess(pid int, name string) {
	if t == nil {
		return
	}
	e := Event{Name: "process_name", Ph: PhaseMetadata, Ts: 0, Pid: pid, Tid: 0, Args: Args{"name": name}}
	t.add(&e)
}

// NameThread attaches a human-readable name to a (pid, tid) lane.
func (t *Tracer) NameThread(pid, tid int, name string) {
	if t == nil {
		return
	}
	e := Event{Name: "thread_name", Ph: PhaseMetadata, Ts: 0, Pid: pid, Tid: tid, Args: Args{"name": name}}
	t.add(&e)
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return t.count
}

// Dropped returns how many events the cap rejected.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	return t.dropped
}

// WriteJSON renders the trace as a Chrome trace_event JSON object
// ({"traceEvents": [...]}) in recorded order. The output is byte-identical
// across same-seed runs.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t != nil && t.err != nil {
		return t.err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	if t != nil {
		if _, err := bw.Write(t.buf); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// Validate checks a serialized trace against the Chrome trace_event schema
// shape this package emits: a traceEvents array whose entries carry a
// non-empty name, a known phase letter, a non-negative timestamp, and — for
// complete events — a non-negative duration. It returns the event count.
// This is what `make trace` runs in CI against a fresh simulation trace.
func Validate(r io.Reader) (int, error) {
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return 0, fmt.Errorf("tracing: not a JSON trace object: %w", err)
	}
	if doc.TraceEvents == nil {
		return 0, fmt.Errorf("tracing: missing traceEvents array")
	}
	for i, raw := range doc.TraceEvents {
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return 0, fmt.Errorf("tracing: event %d malformed: %w", i, err)
		}
		if e.Name == "" {
			return 0, fmt.Errorf("tracing: event %d has no name", i)
		}
		switch e.Ph {
		case PhaseComplete:
			if e.Dur == nil || *e.Dur < 0 {
				return 0, fmt.Errorf("tracing: complete event %d (%s) lacks a non-negative dur", i, e.Name)
			}
		case PhaseInstant, PhaseCounter, PhaseMetadata:
		default:
			return 0, fmt.Errorf("tracing: event %d (%s) has unknown phase %q", i, e.Name, e.Ph)
		}
		if e.Ts < 0 {
			return 0, fmt.Errorf("tracing: event %d (%s) has negative ts", i, e.Name)
		}
	}
	return len(doc.TraceEvents), nil
}
