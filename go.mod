module nostop

go 1.22
