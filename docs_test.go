package nostop

// Documentation lint: every markdown file in the repo must stay true.
// Relative links must resolve (file and anchor), every `make <target>`
// mentioned in code must exist in the Makefile, and every nostop-<x>
// command mentioned must exist under cmd/. The reference-material files
// (PAPER.md, PAPERS.md, SNIPPETS.md, ISSUE.md) are quoted source text,
// not maintained docs, and are excluded.

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docSkip lists markdown files that are quoted reference material rather
// than maintained documentation.
var docSkip = map[string]bool{
	"PAPER.md":    true,
	"PAPERS.md":   true,
	"SNIPPETS.md": true,
	"ISSUE.md":    true,
}

// cmdAllowlist names nostop-<x> tokens that are not commands: trace
// process-lane names documented in docs/METRICS.md.
var cmdAllowlist = map[string]bool{
	"nostop-controller": true,
}

// docFiles walks the repo for maintained markdown files.
func docFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" || d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".md") && !docSkip[filepath.Base(path)] {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 10 {
		t.Fatalf("docs walk found only %d markdown files: %v", len(files), files)
	}
	return files
}

var (
	linkRe    = regexp.MustCompile(`\[[^\[\]]*\]\(([^()\s]+)\)`)
	headingRe = regexp.MustCompile(`^(#{1,6})\s+(.*?)\s*$`)
	fenceRe   = regexp.MustCompile("^\\s*```")
	// slugDropRe removes the characters GitHub drops when slugifying a
	// heading (everything but word characters, spaces, and hyphens).
	slugDropRe = regexp.MustCompile(`[^\p{L}\p{N} _-]`)
	makeRe     = regexp.MustCompile(`(?:^|[\s` + "`" + `])make\s+([a-z][a-z0-9_-]*)`)
	nostopRe   = regexp.MustCompile(`nostop-[a-z][a-z-]*`)
	targetRe   = regexp.MustCompile(`(?m)^([A-Za-z][A-Za-z0-9_-]*):`)
)

// slugify approximates GitHub's heading-anchor algorithm: lowercase, drop
// punctuation, spaces to hyphens, duplicates suffixed -1, -2, …
func slugify(heading string, seen map[string]int) string {
	s := strings.ToLower(heading)
	s = strings.ReplaceAll(slugDropRe.ReplaceAllString(s, ""), " ", "-")
	n := seen[s]
	seen[s]++
	if n > 0 {
		return s + "-" + string(rune('0'+n))
	}
	return s
}

// anchorsOf collects the heading anchors of one markdown file, skipping
// fenced code blocks (a `# comment` inside ```sh is not a heading).
func anchorsOf(t *testing.T, path string) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	anchors := map[string]bool{}
	seen := map[string]int{}
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if fenceRe.MatchString(line) {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		if m := headingRe.FindStringSubmatch(line); m != nil {
			anchors[slugify(m[2], seen)] = true
		}
	}
	return anchors
}

// TestDocsLinksResolve checks every relative markdown link: the target
// file must exist, and a #fragment must name a heading in the target.
func TestDocsLinksResolve(t *testing.T) {
	for _, path := range docFiles(t) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			file, anchor, _ := strings.Cut(target, "#")
			resolved := path
			if file != "" {
				resolved = filepath.Join(filepath.Dir(path), file)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s: link %q: target does not exist", path, target)
					continue
				}
			}
			if anchor != "" && strings.HasSuffix(resolved, ".md") {
				if !anchorsOf(t, resolved)[anchor] {
					t.Errorf("%s: link %q: no heading with anchor %q in %s", path, target, anchor, resolved)
				}
			}
		}
	}
}

// codeSegments extracts the code portions of a markdown file: fenced
// blocks plus inline backtick spans. Command references are only linted
// there — prose like "the semantic implementations make examples real"
// must not trip the make-target check.
func codeSegments(data string) []string {
	var segs []string
	var fence []string
	inFence := false
	for _, line := range strings.Split(data, "\n") {
		if fenceRe.MatchString(line) {
			if inFence {
				segs = append(segs, strings.Join(fence, "\n"))
				fence = fence[:0]
			}
			inFence = !inFence
			continue
		}
		if inFence {
			fence = append(fence, line)
			continue
		}
		// Inline spans on prose lines.
		for {
			open := strings.IndexByte(line, '`')
			if open < 0 {
				break
			}
			rest := line[open+1:]
			close := strings.IndexByte(rest, '`')
			if close < 0 {
				break
			}
			segs = append(segs, rest[:close])
			line = rest[close+1:]
		}
	}
	return segs
}

// makefileTargets parses the Makefile's rule names.
func makefileTargets(t *testing.T) map[string]bool {
	t.Helper()
	data, err := os.ReadFile("Makefile")
	if err != nil {
		t.Fatal(err)
	}
	targets := map[string]bool{}
	for _, m := range targetRe.FindAllStringSubmatch(string(data), -1) {
		targets[m[1]] = true
	}
	if len(targets) == 0 {
		t.Fatal("no targets parsed from Makefile")
	}
	return targets
}

// TestDocsMakeTargetsExist: every `make <target>` in doc code must name a
// real Makefile rule.
func TestDocsMakeTargetsExist(t *testing.T) {
	targets := makefileTargets(t)
	for _, path := range docFiles(t) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, seg := range codeSegments(string(data)) {
			for _, m := range makeRe.FindAllStringSubmatch(seg, -1) {
				if !targets[m[1]] {
					t.Errorf("%s: mentions `make %s` but the Makefile has no such target", path, m[1])
				}
			}
		}
	}
}

// TestDocsCommandsExist: every nostop-<x> token must be a command under
// cmd/ (or an allowlisted trace-lane name). Tokens immediately followed
// by a dot are file names (scenario specs, artifacts), not commands.
func TestDocsCommandsExist(t *testing.T) {
	entries, err := os.ReadDir("cmd")
	if err != nil {
		t.Fatal(err)
	}
	cmds := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() {
			cmds[e.Name()] = true
		}
	}
	for _, path := range docFiles(t) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		content := string(data)
		for _, idx := range nostopRe.FindAllStringIndex(content, -1) {
			token := content[idx[0]:idx[1]]
			if idx[1] < len(content) && content[idx[1]] == '.' {
				continue // file name, e.g. nostop-absorbs-surge.json
			}
			if !cmds[token] && !cmdAllowlist[token] {
				t.Errorf("%s: mentions %q but cmd/%s does not exist", path, token, token)
			}
		}
	}
}
