// Log analytics under NoStop: the Page/Log Analyze workload receives
// synthetic Nginx access-log lines from the Kafka-like broker, washes and
// parses them, and aggregates traffic analytics while NoStop tunes the
// batch interval and executor count underneath — the paper's "common
// scenario in industry" (§6.1).
//
//	go run ./examples/loganalytics
package main

import (
	"fmt"
	"log"
	"time"

	"nostop/internal/core"
	"nostop/internal/engine"
	"nostop/internal/ratetrace"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/stats"
	"nostop/internal/workload"
)

func main() {
	seed := rng.New(11)
	clock := sim.NewClock()
	wl := workload.NewPageAnalyze()
	min, max := wl.RateBand()

	eng, err := engine.New(clock, engine.Options{
		Workload:        wl,
		Trace:           ratetrace.NewUniformBand(min, max, 5*time.Second, seed.Split("trace")),
		Seed:            seed.Split("engine"),
		Initial:         engine.DefaultConfig(),
		PayloadsPerTick: 10, // real log lines flow through the parser
	})
	if err != nil {
		log.Fatal(err)
	}
	ctl, err := core.New(eng, core.Options{Seed: seed.Split("nostop")})
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		log.Fatal(err)
	}
	if err := ctl.Attach(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("analyzing Nginx logs at [%.0f, %.0f] lines/s (×%d simulated via counts + sampled payloads)\n\n",
		min, max, 1)
	fmt.Println("time     config                         5xx-rate  avg-bytes  e2e")
	for t := 10 * time.Minute; t <= 80*time.Minute; t += 10 * time.Minute {
		clock.RunUntil(sim.Time(t))
		h := eng.History()
		var tail []float64
		errRate, avgBytes := 0.0, 0.0
		for _, b := range h[len(h)*8/10:] {
			tail = append(tail, b.EndToEndDelay.Seconds())
			if v, ok := b.Semantic.Output["error_rate"]; ok {
				errRate = v
				avgBytes = b.Semantic.Output["avg_bytes"]
			}
		}
		fmt.Printf("%-8v %-30v %6.2f%%   %7.0fB  %5.1fs\n",
			t, eng.Config(), 100*errRate, avgBytes, stats.Mean(tail))
	}

	// Cumulative analytics the job would write back to HDFS.
	fmt.Println("\ncumulative traffic analysis:")
	for _, path := range []string{"/", "/index.html", "/cart", "/api/items", "/login"} {
		fmt.Printf("  %-14s %6d hits\n", path, wl.PathHits(path))
	}
	fmt.Printf("  status 200: %d, 404: %d, 500: %d\n",
		wl.StatusTotal(200), wl.StatusTotal(404), wl.StatusTotal(500))
	fmt.Printf("\ntuned configuration: %v (started at %v)\n", eng.Config(), engine.DefaultConfig())
}
