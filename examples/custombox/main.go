// Custom black box: the paper claims the SPSA framework "is generic and
// hence is applicable to other big data computing systems" (§1). This
// example tunes a system the library has never seen — a simulated web
// service with two knobs (worker pool size and cache TTL) and a noisy,
// non-convex latency response — using only the internal/spsa package.
//
//	go run ./examples/custombox
package main

import (
	"fmt"
	"log"
	"math"

	"nostop/internal/rng"
	"nostop/internal/spsa"
)

// service models p99 latency (ms) of a web service:
//   - too few workers → queueing latency explodes,
//   - too many workers → contention overhead,
//   - short cache TTL → low hit rate → backend load,
//   - long cache TTL → staleness forces revalidation storms.
//
// The optimum is near (workers≈24, ttl≈45s); measurements carry ~5% noise.
type service struct {
	noise *rng.Stream
}

func (s *service) p99(workers, ttlSecs float64) float64 {
	queueing := 900.0 / math.Max(workers, 1) // queueing drops with pool size
	contention := 0.35 * workers             // lock contention grows
	hitRate := 1 - math.Exp(-ttlSecs/20)     // cache warms with TTL
	backend := 140 * (1 - hitRate)           // misses hit the backend
	staleness := 0.002 * ttlSecs * ttlSecs   // revalidation storms
	base := 12 + queueing + contention + backend + staleness
	return base * s.noise.NoiseFactor(0.05)
}

func main() {
	svc := &service{noise: rng.New(99).Split("measurements")}

	// Normalise both knobs into a shared range (§5.1), exactly as NoStop
	// does for batch interval and executor count.
	workerScale, err := spsa.NewScale(1, 64, 1, 20)
	if err != nil {
		log.Fatal(err)
	}
	ttlScale, err := spsa.NewScale(1, 120, 1, 20)
	if err != nil {
		log.Fatal(err)
	}

	objective := func(x []float64) float64 {
		return svc.p99(workerScale.FromNorm(x[0]), ttlScale.FromNorm(x[1]))
	}

	// §5.6 guidance: A small, a = half the range, c ≈ measurement noise.
	params := spsa.DefaultParams(19, 4)
	params.MaxStep = 4

	fmt.Println("iter   workers   ttl(s)   p99(ms)")
	best, err := spsa.Minimize(objective,
		[]float64{10, 10}, // θ_initial mid-range
		[]float64{1, 1},   // normalised lower bounds
		[]float64{20, 20}, // normalised upper bounds
		params, rng.New(5), 120,
		func(step spsa.Step) {
			if step.K%10 != 0 {
				return
			}
			w := workerScale.FromNorm(step.Theta[0])
			ttl := ttlScale.FromNorm(step.Theta[1])
			fmt.Printf("%4d   %7.1f   %6.1f   %7.1f\n",
				step.K, w, ttl, math.Min(step.YPlus, step.YMinus))
		})
	if err != nil {
		log.Fatal(err)
	}

	w := workerScale.FromNorm(best[0])
	ttl := ttlScale.FromNorm(best[1])
	fmt.Printf("\ntuned: %.0f workers, %.0fs TTL → p99 ≈ %.1fms\n", w, ttl, svc.p99(w, ttl))

	// Reference: coarse grid search (what SPSA avoided paying for).
	bestGrid, bw, bt := math.Inf(1), 0.0, 0.0
	probes := 0
	for gw := 1.0; gw <= 64; gw += 3 {
		for gt := 1.0; gt <= 120; gt += 6 {
			probes++
			if v := svc.p99(gw, gt); v < bestGrid {
				bestGrid, bw, bt = v, gw, gt
			}
		}
	}
	fmt.Printf("grid search reference: %.0f workers, %.0fs TTL → p99 ≈ %.1fms (%d probes vs SPSA's %d)\n",
		bw, bt, bestGrid, probes, 2*120)
}
