// Quickstart: tune a simulated Spark-Streaming WordCount job with NoStop.
//
// The engine starts on the untuned default configuration (30s batch
// interval, 8 executors). NoStop attaches as a listener, probes the
// configuration space with SPSA, and settles near the stability frontier.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"nostop/internal/core"
	"nostop/internal/engine"
	"nostop/internal/ratetrace"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/stats"
	"nostop/internal/workload"
)

func main() {
	seed := rng.New(42)

	// 1. A virtual clock drives everything deterministically.
	clock := sim.NewClock()

	// 2. The workload and its paper input band: WordCount fed at a rate
	//    re-drawn uniformly in [110k, 190k] records/s every 5 seconds.
	wl := workload.NewWordCount()
	min, max := wl.RateBand()
	trace := ratetrace.NewUniformBand(min, max, 5*time.Second, seed.Split("trace"))

	// 3. The micro-batch engine on the paper's Table 2 cluster.
	eng, err := engine.New(clock, engine.Options{
		Workload: wl,
		Trace:    trace,
		Seed:     seed.Split("engine"),
		Initial:  engine.DefaultConfig(), // untuned: 30s interval, 8 executors
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. NoStop with the paper's settings (A=1, a=10, c=2, θ_init mid-range).
	ctl, err := core.New(eng, core.Options{Seed: seed.Split("nostop")})
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		log.Fatal(err)
	}
	if err := ctl.Attach(); err != nil {
		log.Fatal(err)
	}

	// 5. Run two virtual hours and watch the configuration evolve.
	fmt.Println("time     configuration                  phase      recent e2e")
	for t := 10 * time.Minute; t <= 2*time.Hour; t += 10 * time.Minute {
		clock.RunUntil(sim.Time(t))
		h := eng.History()
		var tail []float64
		for _, b := range h[len(h)*8/10:] {
			tail = append(tail, b.EndToEndDelay.Seconds())
		}
		fmt.Printf("%-8v %-30v %-10v %6.1fs\n",
			t, eng.Config(), ctl.Phase(), stats.Mean(tail))
	}

	// 6. Final report: compare against an identical run that keeps the
	//    default configuration (same seeds, same trace — only the tuner
	//    differs).
	refClock := sim.NewClock()
	refSeed := rng.New(42)
	refWl := workload.NewWordCount()
	ref, err := engine.New(refClock, engine.Options{
		Workload: refWl,
		Trace:    ratetrace.NewUniformBand(min, max, 5*time.Second, refSeed.Split("trace")),
		Seed:     refSeed.Split("engine"),
		Initial:  engine.DefaultConfig(),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := ref.Start(); err != nil {
		log.Fatal(err)
	}
	refClock.RunUntil(sim.Time(2 * time.Hour))

	tail := func(h []engine.BatchStats) float64 {
		var xs []float64
		for _, b := range h[len(h)*7/10:] {
			xs = append(xs, b.EndToEndDelay.Seconds())
		}
		return stats.Mean(xs)
	}
	untuned := tail(ref.History())
	tuned := tail(eng.History())
	fmt.Printf("\nsteady-state end-to-end delay: %.1fs untuned → %.1fs tuned (%.1fx better)\n",
		untuned, tuned, untuned/tuned)
	fmt.Printf("final configuration: %v after %d SPSA iterations\n",
		eng.Config(), len(ctl.Iterations()))
}
