// Back pressure vs NoStop on an overloaded system — the comparison the
// paper's abstract promises. Both controllers face the same misconfigured
// deployment (5s interval, 4 executors, LogReg at [7k,13k] rec/s, which the
// fixed configuration cannot sustain):
//
//   - Spark's PID back pressure throttles ingestion until the system keeps
//     up: delay stays low, but a large share of the stream is refused.
//
//   - NoStop reconfigures interval and executors so the system absorbs the
//     full stream: no data loss, delay settles near the optimum.
//
//     go run ./examples/backpressure
package main

import (
	"fmt"
	"log"
	"time"

	"nostop/internal/baselines"
	"nostop/internal/core"
	"nostop/internal/engine"
	"nostop/internal/ratetrace"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/stats"
	"nostop/internal/workload"
)

const horizon = 75 * time.Minute

var overloaded = engine.Config{BatchInterval: 5 * time.Second, Executors: 4}

func buildEngine(seed *rng.Stream) (*sim.Clock, *engine.Engine, error) {
	clock := sim.NewClock()
	wl := workload.NewLogisticRegression()
	min, max := wl.RateBand()
	eng, err := engine.New(clock, engine.Options{
		Workload: wl,
		Trace:    ratetrace.NewUniformBand(min, max, 5*time.Second, seed.Split("trace")),
		Seed:     seed.Split("engine"),
		Initial:  overloaded,
	})
	if err != nil {
		return nil, nil, err
	}
	return clock, eng, eng.Start()
}

type outcome struct {
	name       string
	tailE2E    float64
	queue      int
	dropped    int64
	throughput float64
}

func measure(name string, clock *sim.Clock, eng *engine.Engine) outcome {
	clock.RunUntil(sim.Time(horizon))
	h := eng.History()
	var tail []float64
	for _, b := range h[len(h)*7/10:] {
		tail = append(tail, b.EndToEndDelay.Seconds())
	}
	var processed int64
	for _, b := range h {
		processed += b.Records
	}
	return outcome{
		name:       name,
		tailE2E:    stats.Mean(tail),
		queue:      eng.QueueLen(),
		dropped:    eng.DroppedByCap(),
		throughput: float64(processed) / horizon.Seconds(),
	}
}

func main() {
	var results []outcome

	{ // No controller: the unstable baseline.
		clock, eng, err := buildEngine(rng.New(1))
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, measure("none (unstable)", clock, eng))
	}
	{ // Spark PID back pressure.
		clock, eng, err := buildEngine(rng.New(1))
		if err != nil {
			log.Fatal(err)
		}
		bp, err := baselines.NewBackPressure(eng, baselines.BPOptions{})
		if err != nil {
			log.Fatal(err)
		}
		if err := bp.Attach(); err != nil {
			log.Fatal(err)
		}
		results = append(results, measure("back pressure (PID)", clock, eng))
	}
	{ // NoStop.
		clock, eng, err := buildEngine(rng.New(1))
		if err != nil {
			log.Fatal(err)
		}
		ctl, err := core.New(eng, core.Options{Seed: rng.New(1).Split("nostop")})
		if err != nil {
			log.Fatal(err)
		}
		if err := ctl.Attach(); err != nil {
			log.Fatal(err)
		}
		out := measure("NoStop (SPSA)", clock, eng)
		out.name = fmt.Sprintf("NoStop (SPSA) → %v", eng.Config())
		results = append(results, out)
	}

	fmt.Printf("overloaded start %v, LogisticRegression at [7k,13k] rec/s, %v horizon\n\n", overloaded, horizon)
	fmt.Printf("%-40s %12s %8s %14s %14s\n", "controller", "e2e delay", "queue", "dropped", "throughput")
	for _, r := range results {
		fmt.Printf("%-40s %11.1fs %8d %14d %11.0f/s\n",
			r.name, r.tailE2E, r.queue, r.dropped, r.throughput)
	}
	fmt.Println("\nback pressure protects latency by refusing input; NoStop reconfigures and absorbs the full stream.")
}
