// Streaming machine learning under NoStop: a logistic-regression classifier
// trains on real generated records while SPSA tunes the system underneath,
// and a mid-run traffic surge exercises the §5.5 reset logic.
//
// This example enables the engine's payload path, so each batch carries
// concrete labelled points that the workload's SGD model actually fits —
// the printed accuracy is progressive validation on held-out-by-time data.
//
//	go run ./examples/logregression
package main

import (
	"fmt"
	"log"
	"time"

	"nostop/internal/core"
	"nostop/internal/engine"
	"nostop/internal/ratetrace"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/stats"
	"nostop/internal/workload"
)

func main() {
	seed := rng.New(7)
	clock := sim.NewClock()
	wl := workload.NewLogisticRegression()

	// The paper's [7k, 13k] rec/s band, with an e-commerce-style surge
	// (§5.5's scenario) that roughly doubles the rate for 25 minutes.
	min, max := wl.RateBand()
	base := ratetrace.NewUniformBand(min, max, 5*time.Second, seed.Split("band"))
	trace := surgeOver(base, sim.Time(60*time.Minute), 25*time.Minute, 11000)

	eng, err := engine.New(clock, engine.Options{
		Workload:        wl,
		Trace:           trace,
		Seed:            seed.Split("engine"),
		Initial:         engine.DefaultConfig(),
		PayloadsPerTick: 8, // carry real labelled points for the SGD model
	})
	if err != nil {
		log.Fatal(err)
	}
	ctl, err := core.New(eng, core.Options{Seed: seed.Split("nostop")})
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		log.Fatal(err)
	}
	if err := ctl.Attach(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("time     config                         phase      rate/s   accuracy  e2e")
	for t := 10 * time.Minute; t <= 150*time.Minute; t += 10 * time.Minute {
		clock.RunUntil(sim.Time(t))
		h := eng.History()
		var tail []float64
		acc := 0.0
		for _, b := range h[len(h)*8/10:] {
			tail = append(tail, b.EndToEndDelay.Seconds())
			if a, ok := b.Semantic.Output["accuracy"]; ok {
				acc = a
			}
		}
		fmt.Printf("%-8v %-30v %-10v %7.0f   %.3f   %5.1fs\n",
			t, eng.Config(), ctl.Phase(), eng.RecentRateMean(), acc, stats.Mean(tail))
	}

	fmt.Printf("\nmodel after streaming: weights %.2v\n", wl.Weights())
	fmt.Printf("controller: %d iterations, %d resets (surge detected: %v), %d pauses\n",
		len(ctl.Iterations()), ctl.Resets(), ctl.Resets() > 0, ctl.Pauses())
}

// surgeOver lifts the floor of a band trace to peak during the surge window.
type liftedTrace struct {
	base  ratetrace.Trace
	start sim.Time
	dur   time.Duration
	peak  float64
}

func surgeOver(base ratetrace.Trace, start sim.Time, dur time.Duration, peak float64) ratetrace.Trace {
	return liftedTrace{base: base, start: start, dur: dur, peak: peak}
}

// RateAt implements ratetrace.Trace.
func (l liftedTrace) RateAt(t sim.Time) float64 {
	r := l.base.RateAt(t)
	if t >= l.start && t < l.start+sim.Time(l.dur) {
		return r + l.peak
	}
	return r
}

// Describe implements ratetrace.Trace.
func (l liftedTrace) Describe() string {
	return fmt.Sprintf("%s + surge %.0f at %v for %v", l.base.Describe(), l.peak, l.start, l.dur)
}

// NextChange implements ratetrace.Stepper so integration stays exact.
func (l liftedTrace) NextChange(t sim.Time) sim.Time {
	next := sim.Infinity
	if st, ok := l.base.(ratetrace.Stepper); ok {
		next = st.NextChange(t)
	}
	if t < l.start && l.start < next {
		next = l.start
	}
	if end := l.start + sim.Time(l.dur); t < end && end < next && t >= l.start {
		next = end
	}
	return next
}
