# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml), so a clean `make verify` locally means a green
# pipeline.

GO ?= go

.PHONY: build vet test race chaos bench fleet serve-soak trace golden fuzz-smoke escape-smoke ask-smoke tenants-smoke zoo-smoke docs verify

build:
	$(GO) build ./...

## vet: standard go vet plus the repo's determinism-contract analyzers
## (wallclock, randsource, maporder, floateq, simgoroutine, hotalloc,
## lockguard, obscontract — see DESIGN.md §5d). -time prints load and
## per-analyzer wall time so a pass that suddenly dominates is visible.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/nostop-vet -time ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## chaos: replay the scripted fault plan against all three variants.
chaos:
	$(GO) run ./cmd/nostop-chaos

## bench: quick table regeneration plus the fleet scaling benchmark, which
## writes BENCH_fleet.json (32-job sweep timed at -j 1 vs -j NumCPU, gated at
## 1.2x on multi-core hosts), and the kernel hot-path benchmark, which writes
## BENCH_kernel.json (see PERF.md).
bench:
	$(GO) run ./cmd/nostop-bench -quick
	$(GO) run ./cmd/nostop-bench -experiment fleet -benchout BENCH_fleet.json -min-speedup 1.2
	$(GO) run ./cmd/nostop-bench -experiment kernel -benchout BENCH_kernel.json
	$(GO) run ./cmd/nostop-bench -experiment tenants -benchout BENCH_tenants.json
	$(GO) run ./cmd/nostop-bench -experiment zoo -benchout BENCH_zoo.json
	$(GO) test ./internal/sim/bench -bench . -benchmem

## golden: regenerate the golden-master artifacts after an INTENDED
## output change. Review the diff before committing — these files are the
## determinism contract's byte-for-byte reference.
golden:
	GOLDEN_UPDATE=1 $(GO) test ./internal/experiments -run TestGolden -count=1

## fuzz-smoke: run each native fuzz target briefly against its corpus plus
## 30s of fresh inputs. CI runs the same budget.
fuzz-smoke:
	$(GO) test ./internal/sim -run '^$$' -fuzz FuzzEventQueue -fuzztime 30s
	$(GO) test ./internal/fleet -run '^$$' -fuzz FuzzFleetSpec -fuzztime 30s
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzConfigSpace -fuzztime 30s

## fleet: small parallel sweep with resume — the nostop-fleet smoke path.
fleet:
	$(GO) run ./cmd/nostop-fleet -workloads logreg,wordcount -controllers static,nostop \
		-seeds 1-3 -horizon 10m -j 4 -out /tmp/nostop-fleet
	$(GO) run ./cmd/nostop-fleet -workloads logreg,wordcount -controllers static,nostop \
		-seeds 1-3 -horizon 10m -j 4 -out /tmp/nostop-fleet -resume -quiet

## serve-soak: the service-mode chaos soak CI runs — a deterministic sim
## soak replayed for byte-identical metrics, then a wall-mode soak with a
## live broker kill/restart under the race detector. nostop-serve exits
## non-zero on any invariant violation.
serve-soak:
	$(GO) run ./cmd/nostop-serve -duration 5m -seed 42 -metrics /tmp/nostop-soak-a.prom
	$(GO) run ./cmd/nostop-serve -duration 5m -seed 42 -metrics /tmp/nostop-soak-b.prom
	cmp /tmp/nostop-soak-a.prom /tmp/nostop-soak-b.prom
	$(GO) run -race ./cmd/nostop-serve -mode wall -duration 4m -speedup 20 \
		-metrics /tmp/nostop-soak-wall.prom -trace /tmp/nostop-soak-wall-trace.json

## ask-smoke: run every checked-in scenario spec through nostop-ask with one
## seed and -selftest: each report's verdict must match the spec's "expect"
## field, so a behavioural drift that flips a published verdict fails here.
ask-smoke:
	$(GO) run ./cmd/nostop-ask -smoke -selftest examples/scenarios/*.json

## tenants-smoke: the multi-tenant subsystem smoke — a small mix under the
## race detector, then a plain same-seed rerun whose JSON report must
## compare byte-identical (the determinism contract at CLI granularity).
tenants-smoke:
	$(GO) run -race ./cmd/nostop-tenants -tenants 4 -nodes 16 -cores 2 \
		-horizon 10m -allocator priority -out /tmp/nostop-tenants-a.json
	$(GO) run ./cmd/nostop-tenants -tenants 4 -nodes 16 -cores 2 \
		-horizon 10m -allocator priority -out /tmp/nostop-tenants-b.json
	cmp /tmp/nostop-tenants-a.json /tmp/nostop-tenants-b.json

## docs: the documentation lint — every relative markdown link must resolve
## (file and #anchor), and every `make <target>` / nostop-<x> command that
## the docs mention must actually exist (see docs_test.go).
docs:
	$(GO) test -run 'TestDocs' -count=1 .

## zoo-smoke: the controller-zoo smoke — the five-controller chaos sweep
## over the widened config space under the race detector, then a plain
## same-seed rerun at a different parallelism whose rendered report must
## compare byte-identical (the cross-controller determinism contract at CLI
## granularity).
zoo-smoke:
	$(GO) run -race ./cmd/nostop-zoo -seeds 2 -horizon 20m -j 8 -out /tmp/nostop-zoo-a.txt
	$(GO) run ./cmd/nostop-zoo -seeds 2 -horizon 20m -j 1 -out /tmp/nostop-zoo-b.txt
	cmp /tmp/nostop-zoo-a.txt /tmp/nostop-zoo-b.txt

## trace: short observed run; nostop-sim validates the emitted file against
## the Chrome trace_event schema shape and exits non-zero if it is malformed.
trace:
	$(GO) run ./cmd/nostop-sim -horizon 10m -report 10m \
		-trace /tmp/nostop-trace.json -metrics /tmp/nostop-metrics.prom

## escape-smoke: pin the sim kernel's heap-escape profile. The compiler's -m
## diagnostics (line numbers stripped, sorted) must match the checked-in
## allowlist; a new "escapes to heap" line is either a hot-path regression or
## a deliberate change that updates internal/sim/escape_allowlist.txt. The
## exact diagnostics can shift across Go compiler releases — regenerate the
## allowlist when upgrading the toolchain.
escape-smoke:
	$(GO) build -gcflags='-m' ./internal/sim/... 2>&1 \
		| grep 'escapes to heap' | sed -E 's/:[0-9]+:[0-9]+:/:/' | sort \
		> /tmp/nostop-escapes.txt
	diff -u internal/sim/escape_allowlist.txt /tmp/nostop-escapes.txt

verify: build vet test race escape-smoke trace ask-smoke tenants-smoke zoo-smoke
