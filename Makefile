# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml), so a clean `make verify` locally means a green
# pipeline.

GO ?= go

.PHONY: build vet test race chaos bench fleet trace verify

build:
	$(GO) build ./...

## vet: standard go vet plus the repo's determinism-contract analyzers
## (wallclock, randsource, maporder, floateq, simgoroutine — see DESIGN.md §5d).
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/nostop-vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## chaos: replay the scripted fault plan against all three variants.
chaos:
	$(GO) run ./cmd/nostop-chaos

## bench: quick table regeneration plus the fleet scaling benchmark, which
## writes BENCH_fleet.json (32-job sweep timed at -j 1 vs -j NumCPU).
bench:
	$(GO) run ./cmd/nostop-bench -quick
	$(GO) run ./cmd/nostop-bench -experiment fleet -benchout BENCH_fleet.json

## fleet: small parallel sweep with resume — the nostop-fleet smoke path.
fleet:
	$(GO) run ./cmd/nostop-fleet -workloads logreg,wordcount -controllers static,nostop \
		-seeds 1-3 -horizon 10m -j 4 -out /tmp/nostop-fleet
	$(GO) run ./cmd/nostop-fleet -workloads logreg,wordcount -controllers static,nostop \
		-seeds 1-3 -horizon 10m -j 4 -out /tmp/nostop-fleet -resume -quiet

## trace: short observed run; nostop-sim validates the emitted file against
## the Chrome trace_event schema shape and exits non-zero if it is malformed.
trace:
	$(GO) run ./cmd/nostop-sim -horizon 10m -report 10m \
		-trace /tmp/nostop-trace.json -metrics /tmp/nostop-metrics.prom

verify: build vet test race trace
