// Command nostop-sim runs one simulated Spark-Streaming application under a
// chosen tuner and prints per-phase progress plus a final summary.
//
// Examples:
//
//	nostop-sim -workload logreg -horizon 2h
//	nostop-sim -workload wordcount -tuner bayesopt -seed 7
//	nostop-sim -workload pageanalyze -tuner none -interval 12s -executors 16
//	nostop-sim -horizon 30m -trace out.json -metrics out.prom
//
// -trace writes the full record-lifecycle timeline as Chrome trace_event
// JSON (open in chrome://tracing or Perfetto); -metrics writes the final
// Prometheus text exposition. Both are byte-identical across same-seed
// runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nostop/internal/baselines"
	"nostop/internal/core"
	"nostop/internal/engine"
	"nostop/internal/metrics"
	"nostop/internal/ratetrace"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/stats"
	"nostop/internal/tracing"
	"nostop/internal/workload"
)

func main() {
	var (
		wlName    = flag.String("workload", "wordcount", "workload: logreg, linreg, wordcount, pageanalyze")
		tuner     = flag.String("tuner", "nostop", "tuner: nostop, bayesopt, backpressure, random, none")
		horizon   = flag.Duration("horizon", time.Hour, "virtual run duration")
		seed      = flag.Uint64("seed", 1, "root random seed")
		interval  = flag.Duration("interval", 0, "initial batch interval (default: engine default 30s)")
		executors = flag.Int("executors", 0, "initial executor count (default: engine default 8)")
		rateMin   = flag.Float64("rate-min", 0, "override workload band minimum (records/s)")
		rateMax   = flag.Float64("rate-max", 0, "override workload band maximum (records/s)")
		report    = flag.Duration("report", 10*time.Minute, "progress report period (virtual)")
		failNode  = flag.Int("fail-node", 0, "kill this node ID mid-run (0: no failure)")
		failAt    = flag.Duration("fail-at", 0, "virtual time of the node failure (default: half the horizon)")
		tracePath = flag.String("trace", "", "write a Chrome trace_event JSON timeline to this file")
		promPath  = flag.String("metrics", "", "write the final Prometheus text exposition to this file")
	)
	flag.Parse()
	if *failAt == 0 {
		*failAt = *horizon / 2
	}
	if err := run(*wlName, *tuner, *horizon, *seed, *interval, *executors, *rateMin, *rateMax, *report, *failNode, *failAt, *tracePath, *promPath); err != nil {
		fmt.Fprintln(os.Stderr, "nostop-sim:", err)
		os.Exit(1)
	}
}

func run(wlName, tuner string, horizon time.Duration, seedN uint64,
	interval time.Duration, executors int, rateMin, rateMax float64, report time.Duration,
	failNode int, failAt time.Duration, tracePath, promPath string) error {
	seed := rng.New(seedN)
	wl, err := workload.New(wlName)
	if err != nil {
		return err
	}
	min, max := wl.RateBand()
	if rateMin > 0 {
		min = rateMin
	}
	if rateMax > 0 {
		max = rateMax
	}
	if max < min {
		return fmt.Errorf("rate band [%v, %v] inverted", min, max)
	}
	trace := ratetrace.NewUniformBand(min, max, 5*time.Second, seed.Split("trace"))

	initial := engine.DefaultConfig()
	if interval > 0 {
		initial.BatchInterval = interval
	}
	if executors > 0 {
		initial.Executors = executors
	}

	clock := sim.NewClock()
	var reg *metrics.Registry
	if promPath != "" {
		reg = metrics.NewRegistry()
	}
	var tr *tracing.Tracer
	if tracePath != "" {
		tr = tracing.New(clock, 0)
	}
	eng, err := engine.New(clock, engine.Options{
		Workload: wl,
		Trace:    trace,
		Seed:     seed.Split("engine"),
		Initial:  initial,
		Metrics:  reg,
		Tracer:   tr,
	})
	if err != nil {
		return err
	}
	if err := eng.Start(); err != nil {
		return err
	}

	var ctl *core.Controller
	var bo *baselines.BayesOpt
	switch tuner {
	case "nostop":
		ctl, err = core.New(eng, core.Options{Seed: seed.Split("controller"), Metrics: reg, Tracer: tr})
		if err == nil {
			err = ctl.Attach()
		}
	case "bayesopt":
		bo, err = baselines.NewBayesOpt(eng, baselines.BOOptions{Seed: seed.Split("bo")})
		if err == nil {
			err = bo.Attach()
		}
	case "backpressure":
		var bp *baselines.BackPressure
		bp, err = baselines.NewBackPressure(eng, baselines.BPOptions{})
		if err == nil {
			err = bp.Attach()
		}
	case "random":
		var rs *baselines.RandomSearch
		rs, err = baselines.NewRandomSearch(eng, baselines.RSOptions{Seed: seed.Split("rs")})
		if err == nil {
			err = rs.Attach()
		}
	case "none":
	default:
		return fmt.Errorf("unknown tuner %q", tuner)
	}
	if err != nil {
		return err
	}

	if failNode > 0 {
		node, at := failNode, failAt
		clock.At(sim.Time(at), func() {
			if err := eng.FailNode(node); err != nil {
				fmt.Fprintf(os.Stderr, "fail-node: %v\n", err)
			} else {
				fmt.Printf("t=%7s  node %d FAILED (%d executors survive)\n",
					at.Truncate(time.Second), node, eng.LiveExecutors())
			}
		})
	}

	fmt.Printf("workload %s, band [%.0f, %.0f] rec/s, tuner %s, horizon %v, initial %v\n\n",
		wl.Name(), min, max, tuner, horizon, initial)

	for t := sim.Time(report); t <= sim.Time(horizon); t += sim.Time(report) {
		clock.RunUntil(t)
		h := eng.History()
		var tail []float64
		for _, b := range h[len(h)*8/10:] {
			tail = append(tail, b.EndToEndDelay.Seconds())
		}
		status := ""
		if ctl != nil {
			status = fmt.Sprintf("  phase=%-9v iters=%d", ctl.Phase(), len(ctl.Iterations()))
		}
		if bo != nil {
			status = fmt.Sprintf("  evals=%d done=%v", len(bo.Evaluations()), bo.Done())
		}
		fmt.Printf("t=%7s  cfg=%v  queue=%d  rate=%.0f/s  recent e2e=%.1fs%s\n",
			time.Duration(t).Truncate(time.Second), eng.Config(), eng.QueueLen(),
			eng.RecentRateMean(), stats.Mean(tail), status)
	}

	h := eng.History()
	var all, tail []float64
	for i, b := range h {
		all = append(all, b.EndToEndDelay.Seconds())
		if i >= len(h)*7/10 {
			tail = append(tail, b.EndToEndDelay.Seconds())
		}
	}
	s := stats.Summarize(tail)
	fmt.Printf("\nsummary: %d batches, %d records\n", len(h), eng.TotalRecords())
	fmt.Printf("  steady-state e2e delay: mean %.2fs  p50 %.2fs  p95 %.2fs  max %.2fs\n",
		s.Mean, s.P50, s.P95, s.Max)
	fmt.Printf("  whole-run e2e delay:    mean %.2fs\n", stats.Mean(all))
	fmt.Printf("  final configuration:    %v\n", eng.Config())
	if ctl != nil {
		fmt.Printf("  nostop: %d iterations, %d configure steps, %d pauses, %d resets, %d drains\n",
			len(ctl.Iterations()), ctl.ConfigureSteps(), ctl.Pauses(), ctl.Resets(), ctl.Drains())
	}
	if dropped := eng.DroppedByCap(); dropped > 0 {
		fmt.Printf("  records dropped by rate cap: %d\n", dropped)
	}
	if promPath != "" {
		if err := os.WriteFile(promPath, []byte(reg.String()), 0o644); err != nil {
			return fmt.Errorf("write metrics: %w", err)
		}
		fmt.Printf("  metrics: Prometheus exposition written to %s\n", promPath)
	}
	if tracePath != "" {
		if err := writeTrace(tr, tracePath); err != nil {
			return err
		}
	}
	return nil
}

// writeTrace serialises the trace and validates the result against the
// Chrome trace_event schema shape, failing the run on a malformed file.
func writeTrace(tr *tracing.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("write trace: %w", err)
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("write trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("write trace: %w", err)
	}
	rf, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("validate trace: %w", err)
	}
	defer rf.Close()
	n, err := tracing.Validate(rf)
	if err != nil {
		return fmt.Errorf("validate trace: %w", err)
	}
	fmt.Printf("  trace: %d events written to %s (schema valid)\n", n, path)
	if d := tr.Dropped(); d > 0 {
		fmt.Printf("  trace: %d events dropped at the %d-event cap\n", d, tracing.DefaultMaxEvents)
	}
	return nil
}
