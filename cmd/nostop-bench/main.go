// Command nostop-bench regenerates the paper's tables and figures against
// the simulated substrate and prints them as text tables (or CSV).
//
// Examples:
//
//	nostop-bench -experiment all
//	nostop-bench -experiment fig7 -reps 5 -horizon 2h
//	nostop-bench -experiment fig2 -csv > fig2.csv
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"nostop/internal/experiments"
	"nostop/internal/fleet"
	"nostop/internal/tenant"
)

var registry = map[string]func(experiments.Config) (*experiments.Table, error){
	"fig2":           experiments.Fig2,
	"fig3":           experiments.Fig3,
	"fig5":           experiments.Fig5,
	"fig6":           experiments.Fig6,
	"fig7":           experiments.Fig7,
	"fig8":           experiments.Fig8,
	"backpressure":   experiments.BackPressure,
	"abl-penalty":    experiments.AblationPenaltyRamp,
	"abl-firstbatch": experiments.AblationFirstBatch,
	"abl-window":     experiments.AblationWindow,
	"abl-reset":      experiments.AblationReset,
	"abl-gains":      experiments.AblationGains,
	"abl-scaling":    experiments.AblationScaling,
	"abl-stepclip":   experiments.AblationStepClip,
	"abl-objective":  experiments.AblationObjective,
	"ext-3param":     experiments.Extension3Param,
	"ext-autogains":  experiments.ExtensionAutoGains,
	"ext-failure":    experiments.ExtensionNodeFailure,
	"chaos":          experiments.Chaos,
}

func names() string {
	keys := make([]string, 0, len(registry))
	for k := range registry {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(append([]string{"all", "table2", "fleet", "kernel", "tenants", "zoo"}, keys...), ", ")
}

func main() {
	var (
		name    = flag.String("experiment", "all", "experiment to run: "+names())
		seed    = flag.Uint64("seed", 1, "root random seed")
		reps    = flag.Int("reps", 0, "repetitions for averaged experiments (0: paper's 5)")
		horizon = flag.Duration("horizon", 0, "virtual run duration (0: 2h)")
		quick   = flag.Bool("quick", false, "use the reduced quick configuration")
		csv     = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		bench   = flag.String("benchout", "", "output path (-experiment fleet: BENCH_fleet.json, kernel: BENCH_kernel.json)")
		minSpd  = flag.Float64("min-speedup", 0, "fleet: fail when the host is multi-core and the j=1 vs j=N speedup falls below this floor (0: report only)")
		record  = flag.Bool("record-baseline", false, "kernel: record this run's wall time as the baseline too")
		compare = flag.String("compare", "", "kernel: compare against a prior BENCH_kernel.json and fail on >10% regression")
		cpuprof = flag.String("cpuprofile", "", "write a CPU profile of the benchmark sweep to this file")
	)
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, Repetitions: *reps, Horizon: *horizon}
	if *quick {
		cfg = experiments.Quick()
		cfg.Seed = *seed
	}

	switch *name {
	case "all":
		if *csv {
			fmt.Fprintln(os.Stderr, "nostop-bench: -csv requires a single experiment")
			os.Exit(2)
		}
		if err := experiments.RunAll(os.Stdout, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "nostop-bench:", err)
			os.Exit(1)
		}
	case "table2":
		emit(experiments.Table2(), *csv)
	case "fleet":
		out := *bench
		if out == "" {
			out = "BENCH_fleet.json"
		}
		if err := runFleetBench(out, *minSpd); err != nil {
			fmt.Fprintln(os.Stderr, "nostop-bench:", err)
			os.Exit(1)
		}
	case "kernel":
		out := *bench
		if out == "" {
			out = "BENCH_kernel.json"
		}
		if err := runKernelBench(out, *record, *compare, *cpuprof); err != nil {
			fmt.Fprintln(os.Stderr, "nostop-bench:", err)
			os.Exit(1)
		}
	case "tenants":
		out := *bench
		if out == "" {
			out = "BENCH_tenants.json"
		}
		if err := runTenantsBench(out, *record, *compare); err != nil {
			fmt.Fprintln(os.Stderr, "nostop-bench:", err)
			os.Exit(1)
		}
	case "zoo":
		out := *bench
		if out == "" {
			out = "BENCH_zoo.json"
		}
		if err := runZooBench(out, *record, *compare); err != nil {
			fmt.Fprintln(os.Stderr, "nostop-bench:", err)
			os.Exit(1)
		}
	default:
		fn, ok := registry[*name]
		if !ok {
			fmt.Fprintf(os.Stderr, "nostop-bench: unknown experiment %q (valid: %s)\n", *name, names())
			os.Exit(2)
		}
		t, err := fn(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nostop-bench:", err)
			os.Exit(1)
		}
		emit(t, *csv)
	}
}

func emit(t *experiments.Table, csv bool) {
	if csv {
		t.CSV(os.Stdout)
		return
	}
	t.Render(os.Stdout)
}

// fleetBenchResult is the BENCH_fleet.json payload: a fixed 32-job sweep
// timed serially and at full parallelism. The manifests_identical field
// doubles as a determinism check — the speedup must come for free.
type fleetBenchResult struct {
	Jobs               int     `json:"jobs"`
	NumCPU             int     `json:"numcpu"`
	ParallelismHigh    int     `json:"parallelism_high"`
	WallSecondsJ1      float64 `json:"wall_seconds_j1"`
	WallSecondsJN      float64 `json:"wall_seconds_jn"`
	Speedup            float64 `json:"speedup"`
	ManifestsIdentical bool    `json:"manifests_identical"`
}

// runFleetBench times the fleet benchmark sweep at -j 1 vs -j NumCPU and
// writes the result JSON. The sweep itself is fixed (4 workloads x 8 seeds,
// static controller, 20m horizon = 32 jobs) so numbers are comparable
// across machines; the speedup reflects the host's core count. A positive
// minSpeedup turns the report into a gate on multi-core hosts — a baseline
// recorded on a single-core box (speedup ~1) says nothing about parallel
// scaling, so there the gate only prints a notice.
func runFleetBench(outPath string, minSpeedup float64) error {
	spec := fleet.Spec{
		Name:        "bench-fleet",
		Seeds:       []uint64{1, 2, 3, 4, 5, 6, 7, 8},
		Workloads:   []string{"logreg", "linreg", "wordcount", "pageanalyze"},
		Controllers: []string{fleet.ControllerStatic},
		Horizon:     fleet.Duration(20 * time.Minute),
		Warmup:      0.5,
	}
	run := func(j int) (manifest []byte, wall float64, err error) {
		start := time.Now()
		rep, err := fleet.Run(spec, fleet.Options{Parallelism: j})
		if err != nil {
			return nil, 0, err
		}
		wall = time.Since(start).Seconds()
		manifest, err = rep.Manifest.Encode()
		return manifest, wall, err
	}
	m1, t1, err := run(1)
	if err != nil {
		return err
	}
	// Floor at 2 so the worker-pool path (and its determinism) is always
	// exercised, even on a single-core host where the speedup is ~1.
	jn := runtime.NumCPU()
	if jn < 2 {
		jn = 2
	}
	mn, tn, err := run(jn)
	if err != nil {
		return err
	}
	res := fleetBenchResult{
		Jobs:               len(spec.Seeds) * len(spec.Workloads),
		NumCPU:             runtime.NumCPU(),
		ParallelismHigh:    jn,
		WallSecondsJ1:      t1,
		WallSecondsJN:      tn,
		Speedup:            t1 / tn,
		ManifestsIdentical: string(m1) == string(mn),
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := fleet.WriteFileAtomic(outPath, append(data, '\n')); err != nil {
		return err
	}
	fmt.Printf("fleet bench: %d jobs, j=1 %.1fs, j=%d %.1fs, speedup %.2fx, manifests identical: %v -> %s\n",
		res.Jobs, t1, jn, tn, res.Speedup, res.ManifestsIdentical, outPath)
	if !res.ManifestsIdentical {
		return fmt.Errorf("fleet benchmark manifests diverged between j=1 and j=%d", jn)
	}
	if minSpeedup > 0 {
		if res.NumCPU < 2 {
			fmt.Printf("fleet bench: single-core host, speedup gate (>=%.2fx) not judged\n", minSpeedup)
		} else if res.Speedup < minSpeedup {
			return fmt.Errorf("fleet benchmark speedup %.2fx below the %.2fx floor on a %d-core host (parallel scaling regression)",
				res.Speedup, minSpeedup, res.NumCPU)
		}
	}
	return nil
}

// kernelBenchResult is the BENCH_kernel.json payload: the fixed Fig-7 fleet
// sweep (4 workloads x {static, nostop} x 8 seeds, 20m horizon = 64 jobs)
// timed at -j NumCPU. BaselineWallSeconds is the wall time recorded at the
// pre-optimization commit on the same machine (-record-baseline); Reduction
// is the fractional wall-clock win against it. ManifestSHA256 fingerprints
// the merged manifest so a perf regeneration doubles as a byte-identical
// output check.
type kernelBenchResult struct {
	Jobs                int     `json:"jobs"`
	NumCPU              int     `json:"numcpu"`
	Parallelism         int     `json:"parallelism"`
	BaselineWallSeconds float64 `json:"baseline_wall_seconds"`
	WallSeconds         float64 `json:"wall_seconds"`
	Reduction           float64 `json:"reduction"`
	ManifestSHA256      string  `json:"manifest_sha256"`
}

// kernelSpec is the fixed sweep behind -experiment kernel. It mirrors the
// Fig 7 axes (every workload, untuned default vs NoStop) so the benchmark
// exercises the full hot path: event kernel, broker ingest, engine batch
// loop, and the SPSA controller.
func kernelSpec() fleet.Spec {
	return fleet.Spec{
		Name:        "bench-kernel",
		Seeds:       []uint64{1, 2, 3, 4, 5, 6, 7, 8},
		Workloads:   []string{"logreg", "linreg", "wordcount", "pageanalyze"},
		Controllers: []string{fleet.ControllerStatic, fleet.ControllerNoStop},
		Horizon:     fleet.Duration(20 * time.Minute),
		Warmup:      0.5,
	}
}

// runKernelBench times the kernel sweep, carries the recorded baseline
// forward (unless -record-baseline resets it), and optionally compares
// against a previous result file, failing on a >10% wall-clock regression.
func runKernelBench(outPath string, recordBaseline bool, comparePath, cpuprofPath string) error {
	spec := kernelSpec()
	jn := runtime.NumCPU()
	if jn < 2 {
		jn = 2
	}
	if cpuprofPath != "" {
		f, err := os.Create(cpuprofPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	start := time.Now()
	rep, err := fleet.Run(spec, fleet.Options{Parallelism: jn})
	if err != nil {
		return err
	}
	wall := time.Since(start).Seconds()
	manifest, err := rep.Manifest.Encode()
	if err != nil {
		return err
	}
	res := kernelBenchResult{
		Jobs:           len(rep.Manifest.Jobs),
		NumCPU:         runtime.NumCPU(),
		Parallelism:    jn,
		WallSeconds:    wall,
		ManifestSHA256: fmt.Sprintf("%x", sha256.Sum256(manifest)),
	}
	if prev, err := readKernelResult(outPath); err == nil && !recordBaseline {
		res.BaselineWallSeconds = prev.BaselineWallSeconds
	} else {
		res.BaselineWallSeconds = wall
	}
	if res.BaselineWallSeconds > 0 {
		res.Reduction = 1 - res.WallSeconds/res.BaselineWallSeconds
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := fleet.WriteFileAtomic(outPath, append(data, '\n')); err != nil {
		return err
	}
	fmt.Printf("kernel bench: %d jobs, j=%d, wall %.1fs, baseline %.1fs, reduction %.1f%% -> %s\n",
		res.Jobs, jn, res.WallSeconds, res.BaselineWallSeconds, 100*res.Reduction, outPath)
	if comparePath != "" {
		prev, err := readKernelResult(comparePath)
		if err != nil {
			return fmt.Errorf("compare: %v", err)
		}
		ratio := res.WallSeconds / prev.WallSeconds
		fmt.Printf("kernel bench compare: base %.1fs, head %.1fs, ratio %.3f\n",
			prev.WallSeconds, res.WallSeconds, ratio)
		if ratio > 1.10 {
			return fmt.Errorf("kernel benchmark regressed %.1f%% (base %.1fs, head %.1fs)",
				100*(ratio-1), prev.WallSeconds, res.WallSeconds)
		}
	}
	return nil
}

// tenantsBenchResult is the BENCH_tenants.json payload: the fixed
// 32-tenant / 1000-node / 100-partition synthetic mix timed end to end.
// EventsPerSecond is processed records per wall-clock second (the
// subsystem's throughput headline); AllocsPerEvent is heap allocations per
// processed record across the whole run, the coarse-grained companion to
// the per-package hotalloc budgets. BaselineWallSeconds carries forward
// unless -record-baseline resets it; ReportsIdentical is the same-seed
// determinism check riding along for free.
type tenantsBenchResult struct {
	Tenants             int     `json:"tenants"`
	Nodes               int     `json:"nodes"`
	Partitions          int     `json:"partitions"`
	NumCPU              int     `json:"numcpu"`
	Batches             int     `json:"batches"`
	Records             int64   `json:"records"`
	EventsPerSecond     float64 `json:"events_per_second"`
	AllocsPerEvent      float64 `json:"allocs_per_event"`
	BaselineWallSeconds float64 `json:"baseline_wall_seconds"`
	WallSeconds         float64 `json:"wall_seconds"`
	Reduction           float64 `json:"reduction"`
	ReportSHA256        string  `json:"report_sha256"`
	ReportsIdentical    bool    `json:"reports_identical"`
}

// tenantsMix is the fixed deployment behind -experiment tenants: the
// synthetic 32-tenant mix (mixed trace kinds, including millions-of-users
// population traces) on 1000 nodes with 100 broker partitions per topic —
// the ISSUE-9 target scale.
func tenantsMix() tenant.MixSpec {
	mix := tenant.Synthetic(32, 1000, 4, tenant.AllocFairShare, tenant.Duration(30*time.Minute))
	mix.Partitions = 100
	return mix
}

// runTenantsBench runs the mix twice under the same seed (warm-up run
// doubles as the byte-identical determinism check), times and
// alloc-profiles the second run, carries the recorded baseline forward,
// and optionally compares against a previous result file, failing on a
// >10% wall-clock regression.
func runTenantsBench(outPath string, recordBaseline bool, comparePath string) error {
	mix := tenantsMix()
	warm, err := tenant.Run(mix, 1, tenant.Observe{})
	if err != nil {
		return err
	}
	warmEnc, err := warm.Encode()
	if err != nil {
		return err
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	rep, err := tenant.Run(mix, 1, tenant.Observe{})
	if err != nil {
		return err
	}
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	enc, err := rep.Encode()
	if err != nil {
		return err
	}

	res := tenantsBenchResult{
		Tenants:          len(rep.Tenants),
		Nodes:            rep.Nodes,
		Partitions:       rep.Partitions,
		NumCPU:           runtime.NumCPU(),
		Batches:          rep.Cluster.TotalBatches,
		Records:          rep.Cluster.TotalRecords,
		WallSeconds:      wall,
		ReportSHA256:     fmt.Sprintf("%x", sha256.Sum256(enc)),
		ReportsIdentical: string(warmEnc) == string(enc),
	}
	if rep.Cluster.TotalRecords > 0 {
		res.EventsPerSecond = float64(rep.Cluster.TotalRecords) / wall
		res.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(rep.Cluster.TotalRecords)
	}
	if prev, err := readTenantsResult(outPath); err == nil && !recordBaseline {
		res.BaselineWallSeconds = prev.BaselineWallSeconds
	} else {
		res.BaselineWallSeconds = wall
	}
	if res.BaselineWallSeconds > 0 {
		res.Reduction = 1 - res.WallSeconds/res.BaselineWallSeconds
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := fleet.WriteFileAtomic(outPath, append(data, '\n')); err != nil {
		return err
	}
	fmt.Printf("tenants bench: %d tenants / %d nodes / %d partitions, %d batches, %.2fM events, wall %.1fs, %.2fM events/s, %.3f allocs/event, reports identical: %v -> %s\n",
		res.Tenants, res.Nodes, res.Partitions, res.Batches,
		float64(res.Records)/1e6, res.WallSeconds, res.EventsPerSecond/1e6,
		res.AllocsPerEvent, res.ReportsIdentical, outPath)
	if !res.ReportsIdentical {
		return fmt.Errorf("tenants benchmark reports diverged between same-seed runs")
	}
	if comparePath != "" {
		prev, err := readTenantsResult(comparePath)
		if err != nil {
			return fmt.Errorf("compare: %v", err)
		}
		ratio := res.WallSeconds / prev.WallSeconds
		fmt.Printf("tenants bench compare: base %.1fs, head %.1fs, ratio %.3f\n",
			prev.WallSeconds, res.WallSeconds, ratio)
		if ratio > 1.10 {
			return fmt.Errorf("tenants benchmark regressed %.1f%% (base %.1fs, head %.1fs)",
				100*(ratio-1), prev.WallSeconds, res.WallSeconds)
		}
	}
	return nil
}

// readTenantsResult loads a previous BENCH_tenants.json.
func readTenantsResult(path string) (tenantsBenchResult, error) {
	var res tenantsBenchResult
	data, err := os.ReadFile(path)
	if err != nil {
		return res, err
	}
	if err := json.Unmarshal(data, &res); err != nil {
		return res, fmt.Errorf("%s: %v", path, err)
	}
	return res, nil
}

// zooBenchResult is the BENCH_zoo.json schema: the controller-zoo sweep
// (every registered controller over the widened config space under the
// chaos plan) timed end to end, with the same-seed determinism check riding
// along.
type zooBenchResult struct {
	Controllers         int     `json:"controllers"`
	Seeds               int     `json:"seeds"`
	NumCPU              int     `json:"numcpu"`
	BaselineWallSeconds float64 `json:"baseline_wall_seconds"`
	WallSeconds         float64 `json:"wall_seconds"`
	Reduction           float64 `json:"reduction"`
	ReportSHA256        string  `json:"report_sha256"`
	ReportsIdentical    bool    `json:"reports_identical"`
}

// zooBenchConfig is the fixed sweep behind -experiment zoo: every zoo
// controller, two seeds, a 40-minute horizon — small enough for CI,
// large enough that the tuners finish their searches.
func zooBenchConfig() experiments.Config {
	return experiments.Config{Seed: 1, Repetitions: 2, Horizon: 40 * time.Minute, Warmup: 0.5}
}

// runZooBench runs the zoo sweep twice under the same seed (the warm-up run
// doubles as the byte-identical determinism check), times the second run,
// carries the recorded baseline forward, and optionally compares against a
// previous result file, failing on a >10% wall-clock regression.
func runZooBench(outPath string, recordBaseline bool, comparePath string) error {
	cfg := zooBenchConfig()
	warmTab, err := experiments.ControllerZoo(cfg)
	if err != nil {
		return err
	}
	var warm strings.Builder
	warmTab.Render(&warm)

	start := time.Now()
	tab, err := experiments.ControllerZoo(cfg)
	if err != nil {
		return err
	}
	wall := time.Since(start).Seconds()
	var rendered strings.Builder
	tab.Render(&rendered)

	res := zooBenchResult{
		Controllers:      len(experiments.ZooControllers()),
		Seeds:            cfg.Repetitions,
		NumCPU:           runtime.NumCPU(),
		WallSeconds:      wall,
		ReportSHA256:     fmt.Sprintf("%x", sha256.Sum256([]byte(rendered.String()))),
		ReportsIdentical: warm.String() == rendered.String(),
	}
	if prev, err := readZooResult(outPath); err == nil && !recordBaseline {
		res.BaselineWallSeconds = prev.BaselineWallSeconds
	} else {
		res.BaselineWallSeconds = wall
	}
	if res.BaselineWallSeconds > 0 {
		res.Reduction = 1 - res.WallSeconds/res.BaselineWallSeconds
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := fleet.WriteFileAtomic(outPath, append(data, '\n')); err != nil {
		return err
	}
	fmt.Printf("zoo bench: %d controllers x %d seeds, wall %.1fs, reports identical: %v -> %s\n",
		res.Controllers, res.Seeds, res.WallSeconds, res.ReportsIdentical, outPath)
	if !res.ReportsIdentical {
		return fmt.Errorf("zoo reports diverged between same-seed runs")
	}
	if comparePath != "" {
		prev, err := readZooResult(comparePath)
		if err != nil {
			return fmt.Errorf("compare: %v", err)
		}
		ratio := res.WallSeconds / prev.WallSeconds
		fmt.Printf("zoo bench compare: base %.1fs, head %.1fs, ratio %.3f\n",
			prev.WallSeconds, res.WallSeconds, ratio)
		if ratio > 1.10 {
			return fmt.Errorf("zoo benchmark regressed %.1f%% (base %.1fs, head %.1fs)",
				100*(ratio-1), prev.WallSeconds, res.WallSeconds)
		}
	}
	return nil
}

// readZooResult loads a previous BENCH_zoo.json.
func readZooResult(path string) (zooBenchResult, error) {
	var res zooBenchResult
	data, err := os.ReadFile(path)
	if err != nil {
		return res, err
	}
	if err := json.Unmarshal(data, &res); err != nil {
		return res, fmt.Errorf("%s: %v", path, err)
	}
	return res, nil
}

// readKernelResult loads a previous BENCH_kernel.json.
func readKernelResult(path string) (kernelBenchResult, error) {
	var res kernelBenchResult
	data, err := os.ReadFile(path)
	if err != nil {
		return res, err
	}
	if err := json.Unmarshal(data, &res); err != nil {
		return res, fmt.Errorf("%s: %v", path, err)
	}
	return res, nil
}
