// Command nostop-bench regenerates the paper's tables and figures against
// the simulated substrate and prints them as text tables (or CSV).
//
// Examples:
//
//	nostop-bench -experiment all
//	nostop-bench -experiment fig7 -reps 5 -horizon 2h
//	nostop-bench -experiment fig2 -csv > fig2.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"nostop/internal/experiments"
)

var registry = map[string]func(experiments.Config) (*experiments.Table, error){
	"fig2":           experiments.Fig2,
	"fig3":           experiments.Fig3,
	"fig5":           experiments.Fig5,
	"fig6":           experiments.Fig6,
	"fig7":           experiments.Fig7,
	"fig8":           experiments.Fig8,
	"backpressure":   experiments.BackPressure,
	"abl-penalty":    experiments.AblationPenaltyRamp,
	"abl-firstbatch": experiments.AblationFirstBatch,
	"abl-window":     experiments.AblationWindow,
	"abl-reset":      experiments.AblationReset,
	"abl-gains":      experiments.AblationGains,
	"abl-scaling":    experiments.AblationScaling,
	"abl-stepclip":   experiments.AblationStepClip,
	"abl-objective":  experiments.AblationObjective,
	"ext-3param":     experiments.Extension3Param,
	"ext-autogains":  experiments.ExtensionAutoGains,
	"ext-failure":    experiments.ExtensionNodeFailure,
	"chaos":          experiments.Chaos,
}

func names() string {
	keys := make([]string, 0, len(registry))
	for k := range registry {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(append([]string{"all", "table2"}, keys...), ", ")
}

func main() {
	var (
		name    = flag.String("experiment", "all", "experiment to run: "+names())
		seed    = flag.Uint64("seed", 1, "root random seed")
		reps    = flag.Int("reps", 0, "repetitions for averaged experiments (0: paper's 5)")
		horizon = flag.Duration("horizon", 0, "virtual run duration (0: 2h)")
		quick   = flag.Bool("quick", false, "use the reduced quick configuration")
		csv     = flag.Bool("csv", false, "emit CSV instead of an aligned table")
	)
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, Repetitions: *reps, Horizon: *horizon}
	if *quick {
		cfg = experiments.Quick()
		cfg.Seed = *seed
	}

	switch *name {
	case "all":
		if *csv {
			fmt.Fprintln(os.Stderr, "nostop-bench: -csv requires a single experiment")
			os.Exit(2)
		}
		if err := experiments.RunAll(os.Stdout, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "nostop-bench:", err)
			os.Exit(1)
		}
	case "table2":
		emit(experiments.Table2(), *csv)
	default:
		fn, ok := registry[*name]
		if !ok {
			fmt.Fprintf(os.Stderr, "nostop-bench: unknown experiment %q (valid: %s)\n", *name, names())
			os.Exit(2)
		}
		t, err := fn(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nostop-bench:", err)
			os.Exit(1)
		}
		emit(t, *csv)
	}
}

func emit(t *experiments.Table, csv bool) {
	if csv {
		t.CSV(os.Stdout)
		return
	}
	t.Render(os.Stdout)
}
