// Command nostop-ask answers capacity-planning questions: it runs a
// declarative scenario spec (workload + deployment + fault plan + SLO
// predicates + hypothesis) through the simulator, replicated across seeds,
// and prints a verdict report with per-SLO 95% confidence intervals and a
// first-violation pointer for every broken predicate. The report is
// byte-stable: same spec, same bytes, at any -j.
//
// Examples:
//
//	nostop-ask examples/scenarios/nostop-absorbs-surge.json
//	nostop-ask -json spec.json > report.json
//	nostop-ask -out ask-out spec.json        # report + traces + metrics
//	nostop-ask -smoke -selftest examples/scenarios/*.json   # CI gate
//
// Exit status: 0 CONFIRMED, 1 REJECTED, 2 INCONCLUSIVE, 3 error. With
// several specs, the worst verdict wins. Under -selftest the exit is 0
// iff every spec's computed verdict matches its "expect" field — which is
// how CI executes the intentionally-REJECTED example without failing.
//
// docs/SCENARIOS.md documents the spec format, the SLO predicate grammar,
// and the verdict semantics.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nostop/internal/fleet"
	"nostop/internal/scenario"
)

func main() {
	var (
		j        = flag.Int("j", 0, "worker pool size (0: NumCPU); affects wall time only, never report bytes")
		smoke    = flag.Bool("smoke", false, "run only the first seed of each spec (quick signal, marked in the report)")
		jsonOut  = flag.Bool("json", false, "print the machine-readable JSON report instead of the human one")
		selftest = flag.Bool("selftest", false, "exit 0 iff every spec's verdict matches its \"expect\" field")
		out      = flag.String("out", "", "artifact directory; writes report.json, report.txt, and per-seed trace/metrics files under <out>/<scenario-name>/")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: nostop-ask [flags] <spec.json> [spec.json ...]")
		flag.PrintDefaults()
		os.Exit(3)
	}

	opts := scenario.Options{Parallelism: *j}
	if *smoke {
		opts.SeedLimit = 1
	}

	exit := 0
	for _, path := range flag.Args() {
		code, err := ask(path, opts, *jsonOut, *selftest, *out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nostop-ask: %s: %v\n", path, err)
			os.Exit(3)
		}
		if code > exit {
			exit = code
		}
	}
	os.Exit(exit)
}

// ask runs one spec file and returns its exit contribution.
func ask(path string, opts scenario.Options, jsonOut, selftest bool, outDir string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	spec, err := scenario.Decode(data)
	if err != nil {
		return 0, err
	}
	res, err := scenario.Run(spec, opts)
	if err != nil {
		return 0, err
	}
	report := res.Report

	if jsonOut {
		enc, err := report.Encode()
		if err != nil {
			return 0, err
		}
		os.Stdout.Write(enc)
	} else {
		if err := report.Render(os.Stdout); err != nil {
			return 0, err
		}
		fmt.Println()
	}

	if outDir != "" {
		if err := writeArtifacts(filepath.Join(outDir, report.Spec.Name), res); err != nil {
			return 0, err
		}
	}

	if selftest {
		if report.Spec.Expect == "" {
			return 0, fmt.Errorf("-selftest needs an \"expect\" field in the spec")
		}
		if report.ExpectMatch != nil && *report.ExpectMatch {
			return 0, nil
		}
		return 1, nil
	}
	switch report.Verdict {
	case scenario.VerdictConfirmed:
		return 0, nil
	case scenario.VerdictRejected:
		return 1, nil
	default:
		return 2, nil
	}
}

// writeArtifacts publishes the report pair plus every per-seed artifact
// atomically under dir.
func writeArtifacts(dir string, res *scenario.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	enc, err := res.Report.Encode()
	if err != nil {
		return err
	}
	if err := fleet.WriteFileAtomic(filepath.Join(dir, "report.json"), enc); err != nil {
		return err
	}
	var human strings.Builder
	if err := res.Report.Render(&human); err != nil {
		return err
	}
	if err := fleet.WriteFileAtomic(filepath.Join(dir, "report.txt"), []byte(human.String())); err != nil {
		return err
	}
	for _, art := range res.Artifacts {
		if err := fleet.WriteFileAtomic(filepath.Join(dir, art.Name), art.Data); err != nil {
			return err
		}
	}
	return nil
}
