// Command nostop-listen runs a NoStop-tuned simulation paced against wall
// clock (time-compressed) while serving the streaming listener's JSON
// status over HTTP — a live demo of the Fig 4 architecture.
//
//	nostop-listen -addr :8080 -speedup 60 &
//	curl localhost:8080/status
//	curl localhost:8080/batches?last=5
//	curl localhost:8080/batches/latest
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"nostop/internal/core"
	"nostop/internal/engine"
	"nostop/internal/listener"
	"nostop/internal/metrics"
	"nostop/internal/ratetrace"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/workload"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "HTTP listen address")
		wlName  = flag.String("workload", "wordcount", "workload: logreg, linreg, wordcount, pageanalyze")
		seedN   = flag.Uint64("seed", 1, "root random seed")
		speedup = flag.Float64("speedup", 60, "virtual seconds simulated per wall second")
		horizon = flag.Duration("horizon", 24*time.Hour, "virtual duration before the demo stops")
	)
	flag.Parse()
	if err := run(*addr, *wlName, *seedN, *speedup, *horizon); err != nil {
		fmt.Fprintln(os.Stderr, "nostop-listen:", err)
		os.Exit(1)
	}
}

func run(addr, wlName string, seedN uint64, speedup float64, horizon time.Duration) error {
	if speedup <= 0 {
		return fmt.Errorf("speedup %v must be positive", speedup)
	}
	seed := rng.New(seedN)
	wl, err := workload.New(wlName)
	if err != nil {
		return err
	}
	min, max := wl.RateBand()
	clock := sim.NewClock()
	reg := metrics.NewRegistry()
	eng, err := engine.New(clock, engine.Options{
		Workload: wl,
		Trace:    ratetrace.NewUniformBand(min, max, 5*time.Second, seed.Split("trace")),
		Seed:     seed.Split("engine"),
		Initial:  engine.DefaultConfig(),
		Metrics:  reg,
	})
	if err != nil {
		return err
	}
	col, err := listener.NewCollector(eng, 0)
	if err != nil {
		return err
	}
	col.SetRegistry(reg)
	ctl, err := core.New(eng, core.Options{Seed: seed.Split("controller"), Metrics: reg})
	if err != nil {
		return err
	}
	if err := eng.Start(); err != nil {
		return err
	}
	if err := ctl.Attach(); err != nil {
		return err
	}

	// The simulation kernel is single-threaded; advance it in one
	// goroutine under a mutex shared with the HTTP handlers (the
	// Collector has its own lock, but /status also reads the engine).
	var mu sync.Mutex
	go func() {
		const step = 200 * time.Millisecond
		ticker := time.NewTicker(step)
		defer ticker.Stop()
		for range ticker.C {
			mu.Lock()
			next := clock.Now() + sim.Time(float64(step)*speedup)
			if next > sim.Time(horizon) {
				next = sim.Time(horizon)
			}
			clock.RunUntil(next)
			done := clock.Now() >= sim.Time(horizon)
			mu.Unlock()
			if done {
				return
			}
		}
	}()

	mux := http.NewServeMux()
	mux.Handle("/", col.Handler())
	// Note: the surrounding lockMiddleware already holds the simulation
	// lock for every request, so handlers read controller state directly.
	mux.HandleFunc("GET /controller", func(w http.ResponseWriter, r *http.Request) {
		body := fmt.Sprintf(`{"phase":%q,"iterations":%d,"pauses":%d,"resets":%d,"drains":%d,"configureSteps":%d,"estimate":%q,"virtualTime":%.1f}`+"\n",
			ctl.Phase().String(), len(ctl.Iterations()), ctl.Pauses(), ctl.Resets(),
			ctl.Drains(), ctl.ConfigureSteps(), ctl.Estimate().String(), clock.Now().Seconds())
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, body)
	})

	fmt.Printf("nostop-listen: %s at %.0fx speed on %s (endpoints: /status /batches /batches/latest /controller)\n",
		wl.Name(), speedup, addr)
	srv := &http.Server{
		Addr:              addr,
		Handler:           lockMiddleware(&mu, mux),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      10 * time.Second,
	}
	// Serve until SIGINT/SIGTERM, then drain in-flight status reads before
	// exiting, so a curl mid-scrape never sees a reset connection.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("nostop-listen: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(shutdownCtx)
}

// lockMiddleware serialises HTTP reads against simulation advancement.
func lockMiddleware(mu *sync.Mutex, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		next.ServeHTTP(w, r)
	})
}
