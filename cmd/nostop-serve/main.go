// Command nostop-serve supervises the networked broker/engine/controller
// trio (internal/service) through a chaos soak: it launches the three
// components, drives them with a seeded rate-trace load generator, injects
// process and link faults while they run, and exits non-zero if any
// robustness invariant is violated — records lost past committed offsets,
// controller callback panics, unbounded queue growth, or a component stuck
// degraded/frozen after chaos ends.
//
// Sim mode (default) delivers RPCs on a single deterministic event loop:
// same seed, same byte-identical run. Wall mode binds each component to a
// real HTTP server on 127.0.0.1 with its own paced virtual clock, so kills
// close real listeners and retries ride real sockets.
//
// Examples:
//
//	nostop-serve                                  # deterministic sim soak, scripted chaos
//	nostop-serve -chaos seeded -seed 7            # random kill/link schedule
//	nostop-serve -mode wall -duration 2m          # real-process soak (~6s at 20x)
//	nostop-serve -metrics out.prom -trace out.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"nostop/internal/engine"
	"nostop/internal/faults"
	"nostop/internal/ratetrace"
	"nostop/internal/rng"
	"nostop/internal/service"
	"nostop/internal/sim"
	"nostop/internal/tracing"
	"nostop/internal/workload"
)

func main() {
	var (
		mode       = flag.String("mode", "sim", "supervision mode: sim (deterministic event loop) or wall (real HTTP processes)")
		wlName     = flag.String("workload", "logreg", "workload: "+strings.Join(workload.Names(), ", "))
		seedN      = flag.Uint64("seed", 1, "root random seed (load, RPC jitter, SPSA, seeded chaos)")
		duration   = flag.Duration("duration", 5*time.Minute, "virtual soak duration")
		speedup    = flag.Float64("speedup", 20, "wall mode: virtual seconds per wall second")
		chaos      = flag.String("chaos", "scripted", "chaos plan: scripted, seeded, or none")
		queueBound = flag.Int("queue-bound", 200, "batch-queue length above which growth counts as unbounded")
		maxFetch   = flag.Int64("max-fetch", 5000, "engine per-fetch shedding budget (records)")
		metricsOut = flag.String("metrics", "", "write the Prometheus exposition to this file")
		traceOut   = flag.String("trace", "", "write a Chrome trace (chrome://tracing) to this file")
	)
	flag.Parse()
	if err := run(*mode, *wlName, *seedN, *duration, *speedup, *chaos, *queueBound, *maxFetch, *metricsOut, *traceOut); err != nil {
		fmt.Fprintln(os.Stderr, "nostop-serve:", err)
		os.Exit(1)
	}
}

func run(mode, wlName string, seedN uint64, duration time.Duration, speedup float64, chaosMode string, queueBound int, maxFetch int64, metricsOut, traceOut string) error {
	if duration <= 0 {
		return fmt.Errorf("duration %v must be positive", duration)
	}
	wl, err := workload.New(wlName)
	if err != nil {
		return err
	}
	lo, hi := wl.RateBand()
	cfg := service.ClusterConfig{
		Seed:     seedN,
		Workload: wl,
		Trace:    ratetrace.NewUniformBand(lo, hi, 20*time.Second, rng.New(seedN).Split("trace")),
		Initial:  engine.Config{BatchInterval: 5 * time.Second, Executors: 8},
		MaxFetch: maxFetch,
		Speedup:  speedup,
	}
	var clock *sim.Clock
	switch mode {
	case "sim":
		cfg.Mode = service.ModeSim
		clock = sim.NewClock()
		cfg.Clock = clock
		// Virtual-time RPC budget: tight enough that a dead broker trips
		// the breaker well inside one fetch interval.
		cfg.RPC = service.ClientOptions{
			Timeout: 300 * time.Millisecond, MaxAttempts: 2,
			BackoffBase: 100 * time.Millisecond, BackoffMax: time.Second,
			BreakerThreshold: 3, BreakerCooldown: 2 * time.Second,
		}
		if traceOut != "" {
			cfg.Tracer = tracing.New(clock, 1<<18)
		}
	case "wall":
		cfg.Mode = service.ModeWall
		if speedup <= 0 {
			return fmt.Errorf("speedup %v must be positive", speedup)
		}
		// Wall timers run in real time while component loops run in
		// compressed virtual time, so deadlines stay short.
		cfg.RPC = service.ClientOptions{
			Timeout: 250 * time.Millisecond, MaxAttempts: 2,
			BackoffBase: 50 * time.Millisecond, BackoffMax: 200 * time.Millisecond,
			BreakerThreshold: 3, BreakerCooldown: 500 * time.Millisecond,
		}
		if traceOut != "" {
			cfg.WallTraceEvents = 1 << 16
		}
	default:
		return fmt.Errorf("unknown mode %q (valid: sim, wall)", mode)
	}

	cluster, err := service.NewCluster(cfg)
	if err != nil {
		return err
	}
	plan, err := chaosPlan(chaosMode, seedN, duration)
	if err != nil {
		return err
	}
	if err := cluster.Start(); err != nil {
		return err
	}

	var inj *faults.ProcInjector
	if len(plan) > 0 {
		var sched faults.ProcSchedule
		if mode == "sim" {
			sched = faults.ClockSchedule{Clock: clock}
		} else {
			sched = newWallSchedule(speedup)
		}
		if inj, err = faults.AttachProc(cluster, sched, plan); err != nil {
			return err
		}
		inj.Observe(cluster.Registry(), cfg.Tracer)
	}

	fmt.Printf("nostop-serve: %s mode, %s over %v virtual, chaos=%s (%d windows), seed=%d\n",
		mode, wl.Name(), duration, chaosMode, len(plan), seedN)
	if mode == "sim" {
		cluster.RunSim(duration)
	} else {
		for _, name := range []string{service.PeerBroker, service.PeerEngine, service.PeerController} {
			fmt.Printf("  %-10s http://%s\n", name, cluster.Addr(name))
		}
		time.Sleep(time.Duration(float64(duration) / speedup))
	}
	cluster.Stop()

	tr := cluster.WallTracer()
	if tr == nil {
		tr = cfg.Tracer
	}
	return report(cluster, inj, tr, queueBound, len(plan) > 0, metricsOut, traceOut)
}

// chaosPlan builds the fault schedule: the scripted plan scales the test
// suite's canonical scenario (broker kill/restart, then a controller→engine
// link outage) to the soak duration; seeded draws a random sequential plan.
func chaosPlan(mode string, seedN uint64, d time.Duration) (faults.ProcPlan, error) {
	switch mode {
	case "none":
		return nil, nil
	case "scripted":
		return faults.ProcPlan{
			{Kind: faults.PeerKill, At: sim.Time(d / 5), Duration: d / 10, Peer: service.PeerBroker},
			{Kind: faults.LinkRefuse, At: sim.Time(d / 2), Duration: d / 15,
				From: service.PeerController, To: service.PeerEngine},
		}, nil
	case "seeded":
		plan := faults.ProcChaos(rng.New(seedN).Split("proc-chaos"), faults.ProcChaosOptions{
			Horizon: d,
			Peers:   []string{service.PeerBroker, service.PeerEngine, service.PeerController},
		})
		if len(plan) == 0 {
			return nil, fmt.Errorf("seeded chaos generated no faults; raise -duration")
		}
		return plan, nil
	default:
		return nil, fmt.Errorf("unknown chaos mode %q (valid: scripted, seeded, none)", mode)
	}
}

// wallSchedule maps virtual plan instants onto real timers at the soak
// speedup, counting from its creation (just before the cluster soak).
type wallSchedule struct {
	start   time.Time
	speedup float64
	mu      sync.Mutex
}

func newWallSchedule(speedup float64) *wallSchedule {
	return &wallSchedule{start: time.Now(), speedup: speedup}
}

// At implements faults.ProcSchedule. Actions are serialised so the timeline
// slice stays consistent across timer goroutines.
func (s *wallSchedule) At(t sim.Time, fn func()) {
	delay := time.Duration(float64(t)/s.speedup) - time.Since(s.start)
	if delay < 0 {
		delay = 0
	}
	time.AfterFunc(delay, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		fn()
	})
}

// Now implements faults.ProcSchedule: the current virtual instant.
func (s *wallSchedule) Now() sim.Time {
	return sim.Time(float64(time.Since(s.start)) * s.speedup)
}

// report prints the invariant snapshots and chaos timeline, writes optional
// artifacts, and returns an error (non-zero exit) on any violation.
func report(cluster *service.Cluster, inj *faults.ProcInjector, tr *tracing.Tracer, queueBound int, chaosRan bool, metricsOut, traceOut string) error {
	snaps := cluster.Snapshots()
	body, err := json.MarshalIndent(snaps, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("\nInvariant snapshots:\n%s\n", body)
	if inj != nil {
		fmt.Println("\nChaos timeline:")
		for _, line := range strings.Split(strings.TrimRight(inj.String(), "\n"), "\n") {
			fmt.Printf("  %s\n", line)
		}
	}
	if metricsOut != "" {
		if err := os.WriteFile(metricsOut, []byte(cluster.Registry().String()), 0o644); err != nil {
			return err
		}
		fmt.Println("\nmetrics:", metricsOut)
	}
	if traceOut != "" && tr != nil {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := tr.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("trace:", traceOut)
	}

	if v := service.Violations(snaps, queueBound, chaosRan); len(v) != 0 {
		for _, msg := range v {
			fmt.Fprintln(os.Stderr, "VIOLATION:", msg)
		}
		return fmt.Errorf("%d invariant violation(s)", len(v))
	}
	fmt.Println("\nall invariants held")
	return nil
}
