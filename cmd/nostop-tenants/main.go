// Command nostop-tenants runs a multi-tenant cluster simulation: N
// streaming apps — each with its own topic, workload, trace, and per-app
// SPSA controller — sharing one cluster, with the cluster-level allocator
// arbitrating executor grants. It prints a per-tenant + cluster-wide
// report; same mix and seed always produce the same bytes.
//
// A mix comes either from a JSON spec file (-mix, see docs/TENANCY.md for
// the format) or from the synthetic generator:
//
//	nostop-tenants -mix mix.json -seed 7
//	nostop-tenants -tenants 32 -nodes 1000 -cores 4 -allocator priority
//	nostop-tenants -tenants 8 -json > report.json
//	nostop-tenants -tenants 4 -metrics metrics.prom -out report.json
//
// Exit status: 0 on success, 1 on any error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"nostop/internal/fleet"
	"nostop/internal/metrics"
	"nostop/internal/tenant"
)

func main() {
	var (
		mixPath   = flag.String("mix", "", "mix spec JSON file (overrides the synthetic flags)")
		tenants   = flag.Int("tenants", 8, "synthetic mix: tenant count")
		nodes     = flag.Int("nodes", 64, "synthetic mix: worker nodes")
		cores     = flag.Int("cores", 4, "synthetic mix: cores per worker")
		partitions = flag.Int("partitions", 0, "partitions per topic (0: mix default)")
		allocator = flag.String("allocator", tenant.AllocFairShare, "allocator policy: priority, fair-share, or static")
		horizon   = flag.Duration("horizon", 30*time.Minute, "simulated run length")
		seed      = flag.Uint64("seed", 1, "root seed")
		jsonOut   = flag.Bool("json", false, "print the JSON report instead of the human summary")
		out       = flag.String("out", "", "also write the JSON report to this file (atomic)")
		promOut   = flag.String("metrics", "", "write the final Prometheus metrics snapshot to this file")
	)
	flag.Parse()

	mix, err := loadMix(*mixPath, *tenants, *nodes, *cores, *allocator, *horizon)
	if err != nil {
		fatal(err)
	}
	if *partitions > 0 {
		mix.Partitions = *partitions
	}

	var obs tenant.Observe
	var reg *metrics.Registry
	if *promOut != "" {
		reg = metrics.NewRegistry()
		obs.Metrics = reg
	}

	rep, err := tenant.Run(mix, *seed, obs)
	if err != nil {
		fatal(err)
	}
	b, err := rep.Encode()
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		os.Stdout.Write(b)
	} else {
		render(rep)
	}
	if *out != "" {
		if err := fleet.WriteFileAtomic(*out, b); err != nil {
			fatal(err)
		}
	}
	if *promOut != "" {
		f, err := os.Create(*promOut)
		if err != nil {
			fatal(err)
		}
		if err := reg.WritePrometheus(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

func loadMix(path string, tenants, nodes, cores int, allocator string, horizon time.Duration) (tenant.MixSpec, error) {
	if path == "" {
		return tenant.Synthetic(tenants, nodes, cores, allocator, tenant.Duration(horizon)), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return tenant.MixSpec{}, err
	}
	defer f.Close()
	var mix tenant.MixSpec
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&mix); err != nil {
		return tenant.MixSpec{}, fmt.Errorf("%s: %w", path, err)
	}
	return mix, nil
}

func render(rep *tenant.Report) {
	fmt.Printf("mix %s · seed %d · %d nodes × %d cores · %d partitions/topic · allocator %s\n",
		rep.Mix, rep.Seed, rep.Nodes, rep.Cores, rep.Partitions, rep.Allocator)
	fmt.Printf("horizon %s (warmup %s) · %d tenants\n\n", rep.Horizon, rep.Warmup, len(rep.Tenants))
	fmt.Printf("%-8s %-11s %-7s %4s %6s  %8s %9s %9s  %5s/%-5s %4s\n",
		"TENANT", "WORKLOAD", "CTL", "PRI", "BATCH", "RECORDS", "DELAYμ(s)", "P95(s)", "GRANT", "WANT", "PRE")
	for _, t := range rep.Tenants {
		fmt.Printf("%-8s %-11s %-7s %4d %6d  %8d %9.2f %9.2f  %5d/%-5d %4d\n",
			t.Name, t.Workload, t.Controller, t.Priority, t.Batches,
			t.Records, t.DelayMeanSec, t.DelayP95Sec, t.Grant, t.Demand, t.Preemptions)
	}
	c := rep.Cluster
	fmt.Printf("\ncluster: %d batches · %d records · mean delay %.2fs · cores used %d/%d\n",
		c.TotalBatches, c.TotalRecords, c.MeanDelaySec, c.UsedCores, c.WorkerCores)
	fmt.Printf("alloc:   %d rounds · %d regrants · %d preemptions (%s)\n",
		rep.Alloc.Rounds, rep.Alloc.Regrants, rep.Alloc.Preemptions, rep.Alloc.Policy)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "nostop-tenants: %v\n", err)
	os.Exit(1)
}
