// Command nostop-chaos runs NoStop against the default static configuration
// and Spark's PID back-pressure under a fault plan — scripted or seeded
// chaos — and reports recovery time, delay distributions, and resilience
// accounting (retries, replayed records, records lost), plus the injected
// fault timeline.
//
// Examples:
//
//	nostop-chaos                          # scripted plan, 40m horizon
//	nostop-chaos -mode chaos -seed 7      # seeded random fault schedule
//	nostop-chaos -mode chaos -intensity 2 -horizon 1h -workload wordcount
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nostop/internal/experiments"
	"nostop/internal/faults"
	"nostop/internal/rng"
	"nostop/internal/workload"
)

func main() {
	var (
		wl        = flag.String("workload", "logreg", "workload: "+strings.Join(workload.Names(), ", "))
		horizon   = flag.Duration("horizon", 40*time.Minute, "virtual run duration")
		seed      = flag.Uint64("seed", 1, "root random seed (drives the chaos plan and every run)")
		mode      = flag.String("mode", "scripted", "fault plan source: scripted or chaos")
		intensity = flag.Float64("intensity", 1, "chaos mode pressure: >1 packs faults tighter and harder")
		csv       = flag.Bool("csv", false, "emit CSV instead of an aligned table")
	)
	flag.Parse()

	var plan faults.Plan
	switch *mode {
	case "scripted":
		plan = experiments.ChaosPlan(*horizon)
	case "chaos":
		if *intensity <= 0 {
			fmt.Fprintln(os.Stderr, "nostop-chaos: -intensity must be positive")
			os.Exit(2)
		}
		plan = faults.Chaos(rng.New(*seed).Split("chaos-plan"), faults.ChaosOptions{
			Horizon:     *horizon,
			MeanGap:     time.Duration(float64(*horizon) / (10 * *intensity)),
			MaxStraggle: 2 + 4**intensity,
			MaxTaskFail: min(0.9, 0.5**intensity),
			MaxSpike:    1.3 + 1.2**intensity,
		})
		if len(plan) == 0 {
			fmt.Fprintln(os.Stderr, "nostop-chaos: chaos generated no faults; raise -horizon or -intensity")
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "nostop-chaos: unknown mode %q (valid: scripted, chaos)\n", *mode)
		os.Exit(2)
	}

	cfg := experiments.Config{Seed: *seed, Repetitions: 1, Horizon: *horizon}
	table, timeline, err := experiments.ChaosUnderPlan(cfg, *wl, plan)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nostop-chaos:", err)
		os.Exit(1)
	}
	if *csv {
		table.CSV(os.Stdout)
		return
	}
	table.Render(os.Stdout)
	fmt.Println("Fault plan:")
	for _, f := range plan {
		fmt.Printf("  %v\n", f)
	}
	fmt.Println("\nInjected timeline (NoStop run):")
	for _, line := range strings.Split(strings.TrimRight(timeline, "\n"), "\n") {
		fmt.Printf("  %s\n", line)
	}
}
