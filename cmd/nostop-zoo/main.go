// nostop-zoo runs the controller-zoo head-to-head: every registered tuner
// (static floor, the paper's SPSA controller, Spark back-pressure, the
// uncertainty-aware GP tuner, and the tabular Q-learning tuner) over the
// same widened configuration space under the scripted chaos plan, and
// prints the delay / recovery / shedding comparison table.
//
// The report is a pure function of (-seed, -seeds, -horizon, -warmup): -j
// changes wall time only, never a byte of output, which is what the
// zoo-smoke CI job pins with cmp. Typical runs:
//
//	nostop-zoo                          # 3 seeds, 40m horizon
//	nostop-zoo -seeds 5 -horizon 2h     # the paper-scale comparison
//	nostop-zoo -j 1 -out a.txt          # byte-stable report for diffing
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	"nostop/internal/experiments"
	"nostop/internal/fleet"
)

func main() {
	var (
		seed    = flag.Uint64("seed", 1, "base seed; replication r uses seed+r")
		seeds   = flag.Int("seeds", 3, "number of replication seeds per controller")
		horizon = flag.Duration("horizon", 40*time.Minute, "virtual run duration per job")
		warmup  = flag.Float64("warmup", 0.5, "fraction of each run discarded before measuring")
		j       = flag.Int("j", 0, "worker pool size (0: NumCPU); affects wall time only, never the report")
		out     = flag.String("out", "", "also write the rendered report to this file (atomic)")
	)
	flag.Parse()

	tab, err := experiments.ControllerZoo(experiments.Config{
		Seed:        *seed,
		Repetitions: *seeds,
		Horizon:     *horizon,
		Warmup:      *warmup,
		Parallelism: *j,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "nostop-zoo: %v\n", err)
		os.Exit(1)
	}
	tab.Render(os.Stdout)
	if *out != "" {
		var buf bytes.Buffer
		tab.Render(&buf)
		if err := fleet.WriteFileAtomic(*out, buf.Bytes()); err != nil {
			fmt.Fprintf(os.Stderr, "nostop-zoo: writing %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
}
