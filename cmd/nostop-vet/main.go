// Command nostop-vet checks the repository against the determinism contract:
// the eight custom static analyzers in internal/analysis, run over every
// package in the module (tests included) with the repository's default
// package allowlists.
//
//	nostop-vet [./...]        check the whole module (the only supported scope)
//	nostop-vet -list          list analyzers and exit
//	nostop-vet -analyzers a,b run a subset
//	nostop-vet -tests=false   skip _test.go files
//	nostop-vet -time          report per-analyzer wall time on stderr
//
// Findings print one per line, position-sorted, and the exit status is 1 when
// there are any — so CI can gate on it. Suppress an individual finding with a
// trailing "//nostop:allow <analyzer> -- reason" comment; package-level
// exemptions live in internal/analysis.DefaultConfig.
//
// (The standard go vet -vettool protocol requires the x/tools unitchecker;
// this repository is dependency-free by design, so nostop-vet is a standalone
// whole-module checker instead. `make vet` runs both go vet and nostop-vet.)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"nostop/internal/analysis"
)

func main() {
	tests := flag.Bool("tests", true, "also analyze _test.go files")
	list := flag.Bool("list", false, "list analyzers and exit")
	names := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	timed := flag.Bool("time", false, "report load and per-analyzer wall time on stderr")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "..." {
			fmt.Fprintf(os.Stderr, "nostop-vet: unsupported package pattern %q (the whole module is always checked; use ./...)\n", arg)
			os.Exit(2)
		}
	}

	analyzers := analysis.All()
	if *names != "" {
		analyzers = nil
		for _, name := range strings.Split(*names, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "nostop-vet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := findModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	loadStart := time.Now()
	pkgs, err := analysis.LoadModule(root, analysis.LoadOptions{Tests: *tests})
	if err != nil {
		fatal(err)
	}
	if *timed {
		fmt.Fprintf(os.Stderr, "nostop-vet: load+typecheck %v\n", time.Since(loadStart).Round(time.Millisecond))
	}
	diags := check(pkgs, analyzers, *timed)
	for _, d := range diags {
		if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "nostop-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "nostop-vet: %d packages, %d analyzers, no findings\n", len(pkgs), len(analyzers))
}

// check runs the analyzers, one Check call per analyzer when timing is on so
// each pass's wall time can be attributed, then restores the global
// position-sorted order the single-call path produces.
func check(pkgs []*analysis.Package, analyzers []*analysis.Analyzer, timed bool) []analysis.Diagnostic {
	cfg := analysis.DefaultConfig()
	if !timed {
		return analysis.Check(pkgs, analyzers, cfg)
	}
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		start := time.Now()
		diags = append(diags, analysis.Check(pkgs, []*analysis.Analyzer{a}, cfg)...)
		fmt.Fprintf(os.Stderr, "nostop-vet: %-14s %v\n", a.Name, time.Since(start).Round(time.Millisecond))
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("nostop-vet: no go.mod above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
