// Command nostop-fleet runs parallel, deterministic, resumable experiment
// sweeps: it expands a declarative sweep spec into independent simulation
// jobs, executes them on a bounded worker pool, and writes a byte-stable
// manifest plus per-cell aggregates. The worker count changes wall time
// only — never a single result byte (see docs/FLEET.md).
//
// Examples:
//
//	nostop-fleet -workloads logreg,wordcount -controllers static,nostop -seeds 1-5
//	nostop-fleet -spec sweep.json -j 8 -out fleet-out
//	nostop-fleet -spec sweep.json -j 8 -out fleet-out -resume   # skip cached jobs
//	nostop-fleet -workloads logreg -controllers nostop -seeds 1-3 -chaos
//
// Outputs, under -out:
//
//	runs/<hash>.json   one artifact per job, keyed by the job's content hash
//	manifest.json      per-run records in spec order (byte-stable)
//	aggregates.json    per-cell mean/std/95% CI over seeds (byte-stable)
//	metrics.prom       per-worker fleet counters (scheduling-dependent,
//	                   deliberately kept out of the manifest)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"nostop/internal/experiments"
	"nostop/internal/fleet"
	"nostop/internal/metrics"
)

func main() {
	var (
		specPath    = flag.String("spec", "", "JSON sweep spec file (overrides the inline grid flags)")
		workloads   = flag.String("workloads", "logreg", "comma-separated workloads (logreg,linreg,wordcount,pageanalyze)")
		controllers = flag.String("controllers", "static,nostop",
			"comma-separated controllers ("+strings.Join(fleet.ControllerNames(), ",")+")")
		seeds       = flag.String("seeds", "1-5", "seed list: comma-separated values and lo-hi ranges, e.g. 1,2,5-8")
		horizon     = flag.Duration("horizon", 40*time.Minute, "virtual run duration per job")
		warmup      = flag.Float64("warmup", 0.5, "fraction of each run discarded before measuring")
		chaos       = flag.Bool("chaos", false, "also sweep the scripted chaos fault plan (vs fault-free)")
		j           = flag.Int("j", 0, "worker pool size (0: NumCPU); affects wall time only, never results")
		out         = flag.String("out", "fleet-out", "artifact directory")
		resume      = flag.Bool("resume", false, "skip jobs with a valid cached artifact in -out")
		quiet       = flag.Bool("quiet", false, "suppress per-job progress lines")
		name        = flag.String("name", "", "sweep name recorded in the manifest")
	)
	flag.Parse()

	spec, err := buildSpec(*specPath, *workloads, *controllers, *seeds, *horizon, *warmup, *chaos, *name)
	if err != nil {
		fatal(err)
	}
	if err := spec.Validate(); err != nil {
		fatal(err)
	}

	store, err := fleet.NewStore(*out)
	if err != nil {
		fatal(err)
	}
	reg := metrics.NewRegistry()
	start := time.Now()
	opts := fleet.Options{
		Parallelism: *j,
		Store:       store,
		Resume:      *resume,
		Metrics:     reg,
	}
	if !*quiet {
		opts.Progress = func(done, total int, rec *fleet.Record, cached bool) {
			verb := "ran"
			if cached {
				verb = "cached"
			}
			fmt.Fprintf(os.Stderr, "fleet: [%*d/%d] %-6s %v %s (%.1fs)\n",
				len(strconv.Itoa(total)), done, total, verb, rec.Job, rec.Hash[:8],
				time.Since(start).Seconds())
		}
	}

	report, err := fleet.Run(spec, opts)
	if err != nil {
		fatal(err)
	}

	if err := writeOutputs(*out, report, reg); err != nil {
		fatal(err)
	}
	fmt.Printf("nostop-fleet: jobs=%d executed=%d cached=%d j=%d cells=%d elapsed=%.1fs out=%s\n",
		len(report.Manifest.Jobs), report.Executed, report.Cached, *j,
		len(report.Aggregates), time.Since(start).Seconds(), *out)
}

// buildSpec loads the spec file or assembles one from the inline grid flags.
func buildSpec(path, workloads, controllers, seeds string, horizon time.Duration,
	warmup float64, chaos bool, name string) (fleet.Spec, error) {
	var spec fleet.Spec
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return spec, err
		}
		if err := json.Unmarshal(data, &spec); err != nil {
			return spec, fmt.Errorf("parsing %s: %v", path, err)
		}
	} else {
		seedList, err := fleet.ParseSeeds(seeds)
		if err != nil {
			return spec, err
		}
		spec = fleet.Spec{
			Seeds:       seedList,
			Workloads:   splitList(workloads),
			Controllers: splitList(controllers),
			Horizon:     fleet.Duration(horizon),
			Warmup:      warmup,
		}
		if chaos {
			spec.Plans = []fleet.NamedPlan{
				{},
				{Name: "chaos-scripted", Faults: experiments.ChaosPlan(horizon)},
			}
		}
	}
	if name != "" {
		spec.Name = name
	}
	return spec, nil
}

// splitList splits a comma-separated flag, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// writeOutputs publishes manifest, aggregates, and fleet metrics atomically.
func writeOutputs(dir string, report *fleet.Report, reg *metrics.Registry) error {
	manifest, err := report.Manifest.Encode()
	if err != nil {
		return err
	}
	if err := fleet.WriteFileAtomic(filepath.Join(dir, "manifest.json"), manifest); err != nil {
		return err
	}
	aggs, err := fleet.EncodeAggregates(report.Aggregates)
	if err != nil {
		return err
	}
	if err := fleet.WriteFileAtomic(filepath.Join(dir, "aggregates.json"), aggs); err != nil {
		return err
	}
	var prom strings.Builder
	if err := reg.WritePrometheus(&prom); err != nil {
		return err
	}
	return fleet.WriteFileAtomic(filepath.Join(dir, "metrics.prom"), []byte(prom.String()))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nostop-fleet:", err)
	os.Exit(1)
}
